#include "obs/http/buildinfo.h"

#include <ostream>
#include <sstream>

#include "obs/json.h"
#include "obs/schema.h"

// Fallbacks keep the translation unit compilable outside the CMake
// build (IDE indexers, single-file experiments); the real values come
// from src/CMakeLists.txt and are scoped to this file only, so a new
// git HEAD never rebuilds the whole library.
#ifndef BYZRENAME_VERSION_STRING
#define BYZRENAME_VERSION_STRING "0.0.0"
#endif
#ifndef BYZRENAME_GIT_SHA
#define BYZRENAME_GIT_SHA "unknown"
#endif
#ifndef BYZRENAME_BUILD_TYPE
#define BYZRENAME_BUILD_TYPE "unknown"
#endif
#ifndef BYZRENAME_COMPILER
#define BYZRENAME_COMPILER "unknown"
#endif
#ifndef BYZRENAME_SANITIZERS
#define BYZRENAME_SANITIZERS "none"
#endif

namespace byzrename::obs {

const BuildInfo& build_info() {
  static const BuildInfo info{
      BYZRENAME_VERSION_STRING, BYZRENAME_GIT_SHA, BYZRENAME_BUILD_TYPE,
      BYZRENAME_COMPILER,       BYZRENAME_SANITIZERS,
  };
  return info;
}

void write_buildinfo_json(std::ostream& os, const BuildInfo& info) {
  JsonWriter json(os);
  json.begin_object()
      .field("schema", kBuildinfoSchema)
      .field("version", info.version)
      .field("git_sha", info.git_sha)
      .field("build_type", info.build_type)
      .field("compiler", info.compiler)
      .field("sanitizers", info.sanitizers)
      .end_object();
  os << '\n';
}

void mount_buildinfo(HttpServer& server) {
  server.handle("/buildinfo", [](const HttpRequest&) {
    std::ostringstream body;
    write_buildinfo_json(body, build_info());
    return HttpResponse{200, "application/json", body.str(), {}};
  });
}

}  // namespace byzrename::obs
