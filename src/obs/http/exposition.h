#ifndef BYZRENAME_OBS_HTTP_EXPOSITION_H
#define BYZRENAME_OBS_HTTP_EXPOSITION_H

#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/http/http_server.h"
#include "obs/metrics_registry.h"
#include "obs/telemetry.h"

namespace byzrename::obs {

/// The single Prometheus exposition path of a process: every registered
/// writer appends its families to one text document, in registration
/// order, under one mutex. Both the live GET /metrics handler and the
/// end-of-run --prom-out snapshot render through write(), so the two
/// outputs differ only by whatever the in-flight counters did between
/// the scrape and the end of the run.
///
/// Writers run with the hub mutex held; a writer that shares state with
/// a producer thread must do its own synchronization (GuardedMetricsSink
/// below, or lock-free snapshots like exp::ProgressTracker's).
class ExpositionHub {
 public:
  using Writer = std::function<void(std::ostream&)>;

  void add_writer(Writer writer) {
    const std::lock_guard<std::mutex> lock(mutex_);
    writers_.push_back(std::move(writer));
  }

  /// Renders every writer into @p os. Safe to call from the server
  /// thread while producers keep running.
  void write(std::ostream& os) const;

 private:
  mutable std::mutex mutex_;
  std::vector<Writer> writers_;
};

/// Process-level gauges for the live plane: resident set size and its
/// peak, read from /proc/self/status. Writes nothing on platforms
/// without procfs — absent families, not zeros, per the registry's
/// never-touched convention.
void write_process_metrics(std::ostream& os);

/// MetricsSink wrapper that makes one run's registry scrapeable while
/// the run is producing it: every telemetry hook and every exposition
/// call takes the same mutex, so GET /metrics during a round boundary
/// sees a consistent registry. The per-round cost is one uncontended
/// lock — nothing on the simulation's allocation-free paths changes.
class GuardedMetricsSink final : public TelemetrySink {
 public:
  void on_run_start(const RunInfo& info) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.on_run_start(info);
  }

  void on_round(const RoundSample& sample) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.on_round(sample);
  }

  void write_prometheus(std::ostream& os) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    inner_.write_prometheus(os);
  }

 private:
  mutable std::mutex mutex_;
  MetricsSink inner_;
};

/// Mounts GET /metrics serving @p hub as Prometheus text exposition.
/// The hub must outlive the server.
void mount_prometheus(HttpServer& server, const ExpositionHub& hub);

/// Mounts GET /healthz returning "ok\n" while the process is serving.
void mount_healthz(HttpServer& server);

/// Mounts a JSON endpoint whose body is produced by @p writer on every
/// request (e.g. /progress fed by exp::ProgressTracker). The writer is
/// invoked on the server thread and must be internally synchronized.
void mount_json(HttpServer& server, std::string path,
                std::function<void(std::ostream&)> writer);

}  // namespace byzrename::obs

#endif  // BYZRENAME_OBS_HTTP_EXPOSITION_H
