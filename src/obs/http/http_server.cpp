#include "obs/http/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string_view>

namespace byzrename::obs {

namespace {

constexpr int kPollIntervalMs = 50;
/// Cap on the request line + header block; bodies are bounded separately
/// by the route's PostOptions::max_body_bytes.
constexpr std::size_t kMaxHeaderBytes = 8192;

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 415: return "Unsupported Media Type";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpResponse plain_error(int status, const char* message) {
  return {status, "text/plain; charset=utf-8", std::string(message) + "\n", {}};
}

void set_io_timeout(int fd) {
  // A scraper that stalls mid-request must not wedge the accept loop:
  // connections are served one at a time, so every socket read/write is
  // bounded by this timeout.
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
}

bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t written = ::send(fd, data, size, MSG_NOSIGNAL);
    if (written <= 0) return false;
    data += written;
    size -= static_cast<std::size_t>(written);
  }
  return true;
}

bool equals_ignore_case(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

/// Value of the first header named @p name (case-insensitive) in the
/// header block, or nullopt when absent.
std::optional<std::string_view> header_value(std::string_view headers,
                                             std::string_view name) {
  std::size_t line_start = 0;
  while (line_start < headers.size()) {
    std::size_t line_end = headers.find("\r\n", line_start);
    if (line_end == std::string_view::npos) line_end = headers.size();
    const std::string_view line = headers.substr(line_start, line_end - line_start);
    const std::size_t colon = line.find(':');
    if (colon != std::string_view::npos &&
        equals_ignore_case(trim(line.substr(0, colon)), name)) {
      return trim(line.substr(colon + 1));
    }
    line_start = line_end + 2;
  }
  return std::nullopt;
}

/// Media type comparison per the route policy: the header value up to
/// any ';' parameter must equal the expected type (case-insensitive).
bool content_type_matches(std::string_view header, std::string_view expected) {
  if (expected.empty()) return true;
  const std::size_t semicolon = header.find(';');
  if (semicolon != std::string_view::npos) header = header.substr(0, semicolon);
  return equals_ignore_case(trim(header), expected);
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

HttpServer::Route& HttpServer::route_for(std::string path) {
  if (running()) {
    throw std::logic_error("HttpServer: cannot register routes after start()");
  }
  for (Route& route : routes_) {
    if (route.path == path) return route;
  }
  routes_.push_back(Route{std::move(path), nullptr, nullptr, {}});
  return routes_.back();
}

void HttpServer::handle(std::string path, HttpHandler handler) {
  route_for(std::move(path)).get = std::move(handler);
}

void HttpServer::handle_post(std::string path, HttpHandler handler, PostOptions options) {
  Route& route = route_for(std::move(path));
  route.post = std::move(handler);
  route.post_options = std::move(options);
}

void HttpServer::start(std::uint16_t port) {
  if (running()) throw std::logic_error("HttpServer::start: already running");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("HttpServer: socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: cannot bind 127.0.0.1:" + std::to_string(port) +
                             ": " + detail);
  }
  if (::listen(listen_fd_, 16) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("HttpServer: listen: ") + detail);
  }

  sockaddr_in bound{};
  socklen_t bound_size = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_size) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    // Never started (or already stopped); still reap a joinable thread
    // in case stop() races a previous stop() that already flipped the
    // flag but has not joined yet — join() below is idempotent-guarded.
    if (thread_.joinable()) thread_.join();
    return;
  }
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd poll_set{};
    poll_set.fd = listen_fd_;
    poll_set.events = POLLIN;
    const int ready = ::poll(&poll_set, 1, kPollIntervalMs);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    if ((poll_set.revents & POLLIN) == 0) continue;
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) continue;
    handle_connection(client_fd);
    ::close(client_fd);
  }
}

void HttpServer::handle_connection(int client_fd) {
  set_io_timeout(client_fd);

  // Read until the end of the header block; anything received past it is
  // the start of the body and is kept.
  std::string request;
  char buffer[1024];
  std::size_t header_end = std::string::npos;
  while (request.size() < kMaxHeaderBytes) {
    header_end = request.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    const ssize_t got = ::recv(client_fd, buffer, sizeof buffer, 0);
    if (got <= 0) break;
    request.append(buffer, static_cast<std::size_t>(got));
  }

  HttpResponse response;
  HttpRequest parsed;
  const std::size_t line_end = request.find("\r\n");
  const std::size_t method_end = request.find(' ');
  const std::size_t target_end =
      method_end == std::string::npos ? std::string::npos : request.find(' ', method_end + 1);
  if (header_end == std::string::npos || line_end == std::string::npos ||
      method_end == std::string::npos || target_end == std::string::npos ||
      target_end > line_end) {
    response = plain_error(400, "bad request");
  } else {
    parsed.method = request.substr(0, method_end);
    std::string target = request.substr(method_end + 1, target_end - method_end - 1);
    const std::size_t query = target.find('?');
    if (query != std::string::npos) {
      parsed.query = target.substr(query + 1);
      target.resize(query);
    }
    parsed.target = std::move(target);
    const std::string_view headers =
        std::string_view(request).substr(line_end + 2, header_end - line_end - 2);

    const bool is_get = parsed.method == "GET" || parsed.method == "HEAD";
    const bool is_post = parsed.method == "POST";
    if (!is_get && !is_post) {
      response = plain_error(405, "method not allowed");
    } else {
      const Route* route = nullptr;
      for (const Route& candidate : routes_) {
        if (candidate.path == parsed.target) {
          route = &candidate;
          break;
        }
      }
      if (route == nullptr) {
        response = plain_error(404, "not found");
      } else if (is_get ? route->get == nullptr : route->post == nullptr) {
        response = plain_error(405, "method not allowed");
      } else {
        bool body_ok = true;
        if (is_post) {
          // Validate the declared body before buffering a single byte of
          // it: an oversized or mistyped request is rejected from its
          // headers alone.
          if (const auto type = header_value(headers, "Content-Type")) {
            parsed.content_type = std::string(*type);
          }
          const auto length_header = header_value(headers, "Content-Length");
          std::size_t content_length = 0;
          if (!length_header.has_value()) {
            response = plain_error(411, "length required");
            body_ok = false;
          } else {
            const auto [end, ec] =
                std::from_chars(length_header->data(),
                                length_header->data() + length_header->size(), content_length);
            if (ec != std::errc{} || end != length_header->data() + length_header->size()) {
              response = plain_error(400, "bad Content-Length");
              body_ok = false;
            } else if (content_length > route->post_options.max_body_bytes) {
              response = plain_error(413, "request body too large");
              body_ok = false;
            } else if (!content_type_matches(parsed.content_type,
                                             route->post_options.content_type)) {
              response = plain_error(415, "unsupported content type");
              body_ok = false;
            }
          }
          if (body_ok) {
            parsed.body = request.substr(header_end + 4);
            if (parsed.body.size() > content_length) parsed.body.resize(content_length);
            while (parsed.body.size() < content_length) {
              const std::size_t want = std::min(
                  sizeof buffer, content_length - parsed.body.size());
              const ssize_t got = ::recv(client_fd, buffer, want, 0);
              if (got <= 0) break;  // client hung up or stalled past the timeout
              parsed.body.append(buffer, static_cast<std::size_t>(got));
            }
            if (parsed.body.size() < content_length) {
              response = plain_error(400, "truncated request body");
              body_ok = false;
            }
          }
        }
        if (body_ok) {
          const HttpHandler& handler = is_get ? route->get : route->post;
          try {
            response = handler(parsed);
          } catch (const std::exception& error) {
            response = {500, "text/plain; charset=utf-8",
                        std::string("internal error: ") + error.what() + "\n", {}};
          } catch (...) {
            response = plain_error(500, "internal error");
          }
        }
      }
    }
  }

  std::string head = "HTTP/1.1 " + std::to_string(response.status) + ' ' +
                     status_text(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " + std::to_string(response.body.size());
  for (const auto& [name, value] : response.extra_headers) {
    head += "\r\n" + name + ": " + value;
  }
  head += "\r\nConnection: close\r\n\r\n";
  if (write_all(client_fd, head.data(), head.size()) && parsed.method != "HEAD") {
    write_all(client_fd, response.body.data(), response.body.size());
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace byzrename::obs
