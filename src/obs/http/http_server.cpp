#include "obs/http/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace byzrename::obs {

namespace {

constexpr int kPollIntervalMs = 50;
constexpr std::size_t kMaxRequestBytes = 8192;

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

void set_io_timeout(int fd) {
  // A scraper that stalls mid-request must not wedge the accept loop:
  // connections are served one at a time, so every socket read/write is
  // bounded by this timeout.
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
}

bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t written = ::send(fd, data, size, MSG_NOSIGNAL);
    if (written <= 0) return false;
    data += written;
    size -= static_cast<std::size_t>(written);
  }
  return true;
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, HttpHandler handler) {
  if (running()) {
    throw std::logic_error("HttpServer::handle: cannot register routes after start()");
  }
  routes_.emplace_back(std::move(path), std::move(handler));
}

void HttpServer::start(std::uint16_t port) {
  if (running()) throw std::logic_error("HttpServer::start: already running");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("HttpServer: socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: cannot bind 127.0.0.1:" + std::to_string(port) +
                             ": " + detail);
  }
  if (::listen(listen_fd_, 16) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("HttpServer: listen: ") + detail);
  }

  sockaddr_in bound{};
  socklen_t bound_size = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_size) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    // Never started (or already stopped); still reap a joinable thread
    // in case stop() races a previous stop() that already flipped the
    // flag but has not joined yet — join() below is idempotent-guarded.
    if (thread_.joinable()) thread_.join();
    return;
  }
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd poll_set{};
    poll_set.fd = listen_fd_;
    poll_set.events = POLLIN;
    const int ready = ::poll(&poll_set, 1, kPollIntervalMs);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    if ((poll_set.revents & POLLIN) == 0) continue;
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) continue;
    handle_connection(client_fd);
    ::close(client_fd);
  }
}

void HttpServer::handle_connection(int client_fd) {
  set_io_timeout(client_fd);

  // Read until the end of the header block; the body (there should be
  // none on GET) is ignored.
  std::string request;
  char buffer[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t got = ::recv(client_fd, buffer, sizeof buffer, 0);
    if (got <= 0) break;
    request.append(buffer, static_cast<std::size_t>(got));
  }

  HttpResponse response;
  HttpRequest parsed;
  const std::size_t line_end = request.find("\r\n");
  const std::size_t method_end = request.find(' ');
  const std::size_t target_end =
      method_end == std::string::npos ? std::string::npos : request.find(' ', method_end + 1);
  if (line_end == std::string::npos || method_end == std::string::npos ||
      target_end == std::string::npos || target_end > line_end) {
    response = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else {
    parsed.method = request.substr(0, method_end);
    std::string target = request.substr(method_end + 1, target_end - method_end - 1);
    const std::size_t query = target.find('?');
    if (query != std::string::npos) {
      parsed.query = target.substr(query + 1);
      target.resize(query);
    }
    parsed.target = std::move(target);

    if (parsed.method != "GET" && parsed.method != "HEAD") {
      response = {405, "text/plain; charset=utf-8", "method not allowed\n"};
    } else {
      const HttpHandler* handler = nullptr;
      for (const auto& [path, route] : routes_) {
        if (path == parsed.target) {
          handler = &route;
          break;
        }
      }
      if (handler == nullptr) {
        response = {404, "text/plain; charset=utf-8", "not found\n"};
      } else {
        try {
          response = (*handler)(parsed);
        } catch (const std::exception& error) {
          response = {500, "text/plain; charset=utf-8",
                      std::string("internal error: ") + error.what() + "\n"};
        } catch (...) {
          response = {500, "text/plain; charset=utf-8", "internal error\n"};
        }
      }
    }
  }

  std::string head = "HTTP/1.1 " + std::to_string(response.status) + ' ' +
                     status_text(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " + std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (write_all(client_fd, head.data(), head.size()) && parsed.method != "HEAD") {
    write_all(client_fd, response.body.data(), response.body.size());
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace byzrename::obs
