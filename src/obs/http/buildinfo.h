#ifndef BYZRENAME_OBS_HTTP_BUILDINFO_H
#define BYZRENAME_OBS_HTTP_BUILDINFO_H

#include <iosfwd>
#include <string>

#include "obs/http/http_server.h"

namespace byzrename::obs {

/// Identity of the running binary, for the /buildinfo endpoint every
/// serve surface (byzrename --serve, byzrename-campaign --serve,
/// byzrenamed) mounts. The values are baked in at compile time through
/// definitions scoped to buildinfo.cpp (src/CMakeLists.txt), so an
/// operator can always map a scraped metric or a stored verdict back to
/// the exact build that produced it.
struct BuildInfo {
  std::string version;     ///< project version (CMake PROJECT_VERSION)
  std::string git_sha;     ///< HEAD commit at configure time; "unknown" outside git
  std::string build_type;  ///< CMAKE_BUILD_TYPE
  std::string compiler;    ///< compiler id + version
  std::string sanitizers;  ///< "address,undefined", "thread", or "none"
};

/// The build identity compiled into this binary.
const BuildInfo& build_info();

/// Writes @p info as one byzrename.buildinfo/1 JSON document.
void write_buildinfo_json(std::ostream& os, const BuildInfo& info);

/// Mounts GET /buildinfo serving build_info() as application/json.
void mount_buildinfo(HttpServer& server);

}  // namespace byzrename::obs

#endif  // BYZRENAME_OBS_HTTP_BUILDINFO_H
