#ifndef BYZRENAME_OBS_COMPLEXITY_AUDIT_H
#define BYZRENAME_OBS_COMPLEXITY_AUDIT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/algorithm.h"
#include "obs/telemetry.h"

namespace byzrename::obs {

/// One audited closed-form bound: the paper's formula, the numeric limit
/// it resolves to for this run's (N, t), and the worst value the run
/// actually produced. `upper` distinguishes <= bounds (steps, messages,
/// bits, Delta_r) from the single >= bound (Lemma VI.2's rank gap).
struct AuditBound {
  std::string bound;    ///< stable id, e.g. "steps", "rank_contraction"
  std::string formula;  ///< the paper's closed form, as text
  bool upper = true;    ///< true: observed <= limit; false: observed >= limit
  double limit = 0.0;
  double observed = 0.0;
  bool ok = true;
  std::string detail;  ///< where the extreme was seen, e.g. "round 7 (k=3)"
};

/// TelemetrySink that evaluates the paper's complexity budgets online
/// against a live run and renders a byzrename.audit/1 verdict record.
///
/// Bounds checked (each only when the run's algorithm and probes make it
/// meaningful; see docs/OBSERVABILITY.md for the formula -> code -> data
/// table):
///   steps             rounds <= 4+iterations (op/const: Thm. IV.12's
///                     3*ceil(log2 t)+7 at default iterations) or 2 (fast)
///   messages          correct messages <= 4.5 * N^2 * rounds. The hard
///                     bound is N^2 per round (correct processes only
///                     broadcast, at most once per round), so the measured
///                     4.5x envelope (EXPERIMENTS.md T4) can never falsely
///                     fire.
///   bit_size          max correct message <= (N+t)*(64+ceil(log2 N)+40)
///                     bits, the Section IV-D vote-vector size (op/const)
///   rank_contraction  Delta_r <= Delta_4 / rate^k for voting iteration
///                     k, with the CONSTRUCTIVE rate floor((N-2t-1)/t)+1
///                     of EXPERIMENTS.md Finding #1 — one less than Lemma
///                     IV.8's floor((N-2t)/t)+1 exactly when t | (N-2t),
///                     i.e. the looser envelope that measured runs meet
///                     with zero false alarms
///   fast_discrepancy  max name discrepancy <= 2t^2 (Lemma VI.1, fast)
///   fast_gap          min rank gap >= N-t (Lemma VI.2, fast; the one
///                     lower bound)
///
/// Attach next to a MetricsSink on the run's Telemetry; after on_run_end
/// the verdict is final (complete() flips true).
class ComplexityAuditor final : public TelemetrySink {
 public:
  /// Measured message-constant envelope (EXPERIMENTS.md T4): observed
  /// correct-message totals sit under 4.5 * N^2 * rounds across the
  /// adversary sweep, while the provable ceiling is 1.0 * N^2 * rounds.
  static constexpr double kMessageConstant = 4.5;

  void on_run_start(const RunInfo& info) override;
  void on_round(const RoundSample& sample) override;
  void on_run_end(const RunSummary& summary) override;

  /// True once on_run_end folded the whole-run totals; bounds() is
  /// meaningless before that.
  [[nodiscard]] bool complete() const noexcept { return complete_; }
  [[nodiscard]] const std::vector<AuditBound>& bounds() const noexcept { return bounds_; }
  [[nodiscard]] bool all_ok() const noexcept;
  [[nodiscard]] const RunInfo& info() const noexcept { return info_; }

  /// One byzrename.audit/1 line (schema'd in obs/schema.h).
  /// Deterministic: no wall clocks enter any bound.
  void write_audit_jsonl(std::ostream& os) const;

  /// The contraction rate the envelope uses: floor((N-2t-1)/t)+1, the
  /// constructive per-iteration factor of EXPERIMENTS.md Finding #1.
  /// Exposed for tests; requires t >= 1.
  [[nodiscard]] static int contraction_rate(int n, int t) noexcept {
    return (n - 2 * t - 1) / t + 1;
  }

 private:
  RunInfo info_;
  core::Algorithm algorithm_ = core::Algorithm::kOpRenaming;
  bool algorithm_known_ = false;
  bool complete_ = false;

  // Voting-phase contraction state, accumulated per round.
  bool have_baseline_ = false;
  double baseline_spread_ = 0.0;  ///< Delta_4: spread when voting begins
  bool have_contraction_ = false;
  double worst_spread_ = 0.0;    ///< spread of the worst voting round
  double worst_envelope_ = 0.0;  ///< its envelope Delta_4 / rate^k
  int worst_round_ = 0;
  int worst_iteration_ = 0;

  // Fast-renaming probe extremes.
  bool have_fast_ = false;
  double fast_worst_discrepancy_ = 0.0;
  double fast_worst_gap_ = 0.0;
  int fast_discrepancy_round_ = 0;
  int fast_gap_round_ = 0;

  std::vector<AuditBound> bounds_;
};

}  // namespace byzrename::obs

#endif  // BYZRENAME_OBS_COMPLEXITY_AUDIT_H
