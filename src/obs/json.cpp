#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace byzrename::obs {

void write_json_string(std::ostream& os, std::string_view text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void JsonWriter::prefix() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (first_.back()) {
      first_.back() = false;
    } else {
      os_ << ',';
    }
  }
}

JsonWriter& JsonWriter::begin_object() {
  prefix();
  os_ << '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  first_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prefix();
  os_ << '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  first_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  prefix();
  write_json_string(os_, name);
  os_ << ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  prefix();
  write_json_string(os_, text);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  prefix();
  os_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(long long n) {
  prefix();
  os_ << n;
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long n) {
  prefix();
  os_ << n;
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  prefix();
  if (!std::isfinite(d)) {
    os_ << "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", d);
  os_ << buf;
  return *this;
}

}  // namespace byzrename::obs
