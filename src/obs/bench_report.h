#ifndef BYZRENAME_OBS_BENCH_REPORT_H
#define BYZRENAME_OBS_BENCH_REPORT_H

#include <fstream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/harness.h"
#include "exp/campaign.h"
#include "obs/run_report.h"
#include "obs/telemetry.h"

namespace byzrename::obs {

/// One-stop telemetry plumbing for the bench binaries: opens
/// <out_dir>/<bench_name>.jsonl (creating the directory), and routes
/// every scenario through run_scenario with a RunReportSink attached, so
/// each bench emits its human table AND a machine-readable trajectory
/// feed without hand-rolled wiring.
///
/// Filesystem failures (read-only checkout, exotic CI sandbox) disable
/// reporting instead of failing the bench: the tables still print.
///
/// Thread safety: run() serializes whole scenarios behind an internal
/// mutex (the shared sink buffers per-run state) — correct but serial.
/// Parallel benches go through run_campaign(), which gives every worker
/// its own sink and only shares the mutex-guarded line writes.
class BenchReporter {
 public:
  explicit BenchReporter(std::string bench_name, std::string out_dir = "bench/out");

  /// run_scenario with telemetry attached; @p label lands in the
  /// report's `label` field (use the table row's coordinates). Safe to
  /// call from multiple threads, but runs back-to-back; use
  /// run_campaign() when throughput matters.
  core::ScenarioResult run(core::ScenarioConfig config, std::string label = {});

  /// Runs a campaign through the src/exp engine with this reporter's
  /// file as the destination: one byzrename.run/1 line per run (written
  /// concurrently, never interleaved) followed by the deterministic
  /// byzrename.campaign/1 cell lines. @p options::runs_out/runs_bench
  /// are overridden to point here.
  exp::CampaignResult run_campaign(const exp::CampaignSpec& spec,
                                   exp::CampaignOptions options = {});

  /// Emits a byzrename.series/1 line for measurements that are not
  /// scenario runs (e.g. the scalar-AA contraction series of F3).
  void write_series(const std::string& label,
                    const std::vector<std::pair<std::string, double>>& values);

  [[nodiscard]] bool enabled() const noexcept { return out_.is_open(); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] Telemetry& telemetry() noexcept { return telemetry_; }

  /// Prints a one-line pointer to the report file (no-op when disabled);
  /// benches call this after their table.
  void announce(std::ostream& os) const;

 private:
  std::string bench_;
  std::string path_;
  std::ofstream out_;
  std::mutex write_mutex_;  ///< guards whole-line appends to out_
  std::mutex run_mutex_;    ///< serializes run() scenarios (shared sink state)
  RunReportSink sink_;
  Telemetry telemetry_;
};

}  // namespace byzrename::obs

#endif  // BYZRENAME_OBS_BENCH_REPORT_H
