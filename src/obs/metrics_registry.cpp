#include "obs/metrics_registry.h"

#include <algorithm>
#include <iterator>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "obs/json.h"
#include "obs/schema.h"

namespace byzrename::obs {

void write_prometheus_label_value(std::ostream& os, std::string_view value) {
  for (const char c : value) {
    switch (c) {
      case '\\': os << "\\\\"; break;
      case '"': os << "\\\""; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
}

void write_prometheus_help(std::ostream& os, std::string_view help) {
  for (const char c : help) {
    switch (c) {
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
}

MetricsRegistry::Handle MetricsRegistry::counter(std::string name, std::string help,
                                                 std::string phase) {
  // The key must be computed before the call: parameter construction
  // may move from `phase` first, making phase.empty() always true.
  std::string label_key = phase.empty() ? std::string() : std::string("phase");
  return labeled_counter(std::move(name), std::move(help), std::move(label_key),
                         std::move(phase));
}

MetricsRegistry::Handle MetricsRegistry::labeled_counter(std::string name, std::string help,
                                                         std::string label_key,
                                                         std::string label_value) {
  Instrument instrument;
  instrument.kind = Kind::kCounter;
  instrument.name = std::move(name);
  instrument.help = std::move(help);
  instrument.label_key = std::move(label_key);
  instrument.label_value = std::move(label_value);
  instruments_.push_back(std::move(instrument));
  return instruments_.size() - 1;
}

MetricsRegistry::Handle MetricsRegistry::gauge(std::string name, std::string help) {
  return labeled_gauge(std::move(name), std::move(help), {}, {});
}

MetricsRegistry::Handle MetricsRegistry::labeled_gauge(std::string name, std::string help,
                                                       std::string label_key,
                                                       std::string label_value) {
  Instrument instrument;
  instrument.kind = Kind::kGauge;
  instrument.name = std::move(name);
  instrument.help = std::move(help);
  instrument.label_key = std::move(label_key);
  instrument.label_value = std::move(label_value);
  instruments_.push_back(std::move(instrument));
  return instruments_.size() - 1;
}

MetricsRegistry::Handle MetricsRegistry::histogram(std::string name, std::string help,
                                                   std::vector<std::uint64_t> upper_bounds) {
  if (upper_bounds.empty()) {
    throw std::invalid_argument("MetricsRegistry::histogram: at least one finite bound required");
  }
  for (std::size_t i = 1; i < upper_bounds.size(); ++i) {
    if (upper_bounds[i] <= upper_bounds[i - 1]) {
      throw std::invalid_argument("MetricsRegistry::histogram: bounds must strictly increase");
    }
  }
  Instrument instrument;
  instrument.kind = Kind::kHistogram;
  instrument.name = std::move(name);
  instrument.help = std::move(help);
  instrument.bucket_counts.assign(upper_bounds.size() + 1, 0);
  instrument.bounds = std::move(upper_bounds);
  instruments_.push_back(std::move(instrument));
  return instruments_.size() - 1;
}

void MetricsRegistry::add(Handle counter, std::uint64_t delta) {
  Instrument& instrument = instruments_.at(counter);
  if (instrument.kind != Kind::kCounter) {
    throw std::invalid_argument("MetricsRegistry::add: not a counter");
  }
  instrument.count += delta;
  instrument.touched = true;
}

void MetricsRegistry::set(Handle gauge, double value) {
  Instrument& instrument = instruments_.at(gauge);
  if (instrument.kind != Kind::kGauge) {
    throw std::invalid_argument("MetricsRegistry::set: not a gauge");
  }
  instrument.gauge = value;
  instrument.touched = true;
}

void MetricsRegistry::observe(Handle histogram, std::uint64_t value) {
  Instrument& instrument = instruments_.at(histogram);
  if (instrument.kind != Kind::kHistogram) {
    throw std::invalid_argument("MetricsRegistry::observe: not a histogram");
  }
  // First bucket whose inclusive upper bound holds the value; the +Inf
  // overflow bucket is the final slot.
  const auto it = std::lower_bound(instrument.bounds.begin(), instrument.bounds.end(), value);
  instrument.bucket_counts[static_cast<std::size_t>(it - instrument.bounds.begin())] += 1;
  instrument.count += 1;
  instrument.sum += value;
  instrument.touched = true;
}

std::uint64_t MetricsRegistry::counter_value(Handle handle) const {
  return instruments_.at(handle).count;
}

double MetricsRegistry::gauge_value(Handle handle) const {
  return instruments_.at(handle).gauge;
}

std::uint64_t MetricsRegistry::histogram_count(Handle handle) const {
  return instruments_.at(handle).count;
}

std::uint64_t MetricsRegistry::histogram_sum(Handle handle) const {
  return instruments_.at(handle).sum;
}

std::vector<std::uint64_t> MetricsRegistry::exponential_bounds(std::uint64_t first,
                                                               std::uint64_t factor, int count) {
  std::vector<std::uint64_t> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  std::uint64_t bound = first;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  // Families are emitted in first-registration order, each series under
  // its family's single # HELP/# TYPE header even when registrations
  // interleaved (the service registers per-tenant series as sessions
  // arrive). Quadratic in the instrument count, which stays small; the
  // hot path is add()/observe(), never exposition.
  const auto write_series = [&os](const Instrument& instrument) {
    const auto write_name_and_label = [&] {
      os << instrument.name;
      if (!instrument.label_key.empty()) {
        os << '{' << instrument.label_key << "=\"";
        write_prometheus_label_value(os, instrument.label_value);
        os << "\"}";
      }
    };
    switch (instrument.kind) {
      case Kind::kCounter:
        write_name_and_label();
        os << ' ' << instrument.count << '\n';
        break;
      case Kind::kGauge:
        write_name_and_label();
        os << ' ' << instrument.gauge << '\n';
        break;
      case Kind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < instrument.bounds.size(); ++i) {
          cumulative += instrument.bucket_counts[i];
          os << instrument.name << "_bucket{le=\"" << instrument.bounds[i] << "\"} "
             << cumulative << '\n';
        }
        os << instrument.name << "_bucket{le=\"+Inf\"} " << instrument.count << '\n';
        os << instrument.name << "_sum " << instrument.sum << '\n';
        os << instrument.name << "_count " << instrument.count << '\n';
        break;
      }
    }
  };

  std::vector<bool> emitted(instruments_.size(), false);
  for (std::size_t i = 0; i < instruments_.size(); ++i) {
    if (emitted[i] || !instruments_[i].touched) continue;
    const Instrument& head = instruments_[i];
    os << "# HELP " << head.name << ' ';
    write_prometheus_help(os, head.help);
    os << '\n';
    os << "# TYPE " << head.name << ' '
       << (head.kind == Kind::kCounter ? "counter"
           : head.kind == Kind::kGauge ? "gauge"
                                       : "histogram")
       << '\n';
    for (std::size_t j = i; j < instruments_.size(); ++j) {
      if (emitted[j] || !instruments_[j].touched || instruments_[j].name != head.name) continue;
      write_series(instruments_[j]);
      emitted[j] = true;
    }
  }
  os.flush();
}

// --- MetricsSink ----------------------------------------------------------

void MetricsSink::on_run_start(const RunInfo& info) {
  info_ = info;
  rows_.clear();
  registry_.clear();
  const auto algorithm = core::algorithm_from_name(info.algorithm);
  algorithm_known_ = algorithm.has_value();
  if (algorithm_known_) algorithm_ = *algorithm;

  // Every phase's counter family is registered up front (families
  // consecutive, series per phase), so on_round is pure indexing. Series
  // a run never touches are dropped from the Prometheus dump.
  constexpr core::Phase kPhases[] = {core::Phase::kSelection, core::Phase::kEcho,
                                     core::Phase::kReady,     core::Phase::kVoting,
                                     core::Phase::kDecision,  core::Phase::kProtocol};
  per_phase_.assign(std::size(kPhases), PhaseCounters{});
  const auto register_family =
      [&](const char* name, const char* help, MetricsRegistry::Handle PhaseCounters::*slot) {
        for (const core::Phase phase : kPhases) {
          per_phase_[static_cast<std::size_t>(phase)].*slot =
              registry_.counter(name, help, core::to_string(phase));
        }
      };
  register_family("byzrename_messages_total", "Messages delivered, by protocol phase.",
                  &PhaseCounters::messages);
  register_family("byzrename_bits_total", "Wire bits delivered, by protocol phase.",
                  &PhaseCounters::bits);
  register_family("byzrename_correct_messages_total",
                  "Messages from correct senders, by protocol phase.",
                  &PhaseCounters::correct_messages);
  register_family("byzrename_correct_bits_total",
                  "Wire bits from correct senders, by protocol phase.",
                  &PhaseCounters::correct_bits);
  register_family("byzrename_equivocating_sends_total",
                  "Targeted Byzantine sends, by protocol phase.",
                  &PhaseCounters::equivocating_sends);
  register_family("byzrename_injected_faults_total",
                  "Fault-injector interventions (drops+duplicates+delays), by phase.",
                  &PhaseCounters::injected_faults);

  rounds_total_ = registry_.counter("byzrename_rounds_total", "Synchronous rounds executed.");
  rank_spread_ = registry_.gauge("byzrename_rank_spread",
                                 "Delta_r: max per-id rank spread over correct processes "
                                 "(Lemmas IV.7-9); last sampled round.");
  adjacent_gap_ = registry_.gauge("byzrename_adjacent_rank_gap",
                                  "Min adjacent rank gap (Corollary IV.6); last sampled round.");
  accepted_min_ = registry_.gauge("byzrename_accepted_min",
                                  "Min |accepted| over correct processes; last sampled round.");
  accepted_max_ = registry_.gauge("byzrename_accepted_max",
                                  "Max |accepted| over correct processes; last sampled round.");
  rejected_votes_ = registry_.gauge("byzrename_rejected_votes",
                                    "Votes/echoes killed by validation, cumulative.");
  round_messages_hist_ =
      registry_.histogram("byzrename_round_messages", "Messages delivered per round.",
                          MetricsRegistry::exponential_bounds(1, 4, 16));
  message_bits_hist_ =
      registry_.histogram("byzrename_message_bits", "Largest single message per round, bits.",
                          MetricsRegistry::exponential_bounds(8, 2, 24));
}

void MetricsSink::on_round(const RoundSample& sample) {
  const core::RoundPhase phase =
      algorithm_known_ ? core::round_phase(algorithm_, sample.round, info_.iterations)
                       : core::RoundPhase{};
  const PhaseCounters& counters = per_phase_[static_cast<std::size_t>(phase.phase)];
  registry_.add(counters.messages, sample.metrics.messages);
  registry_.add(counters.bits, sample.metrics.bits);
  registry_.add(counters.correct_messages, sample.metrics.correct_messages);
  registry_.add(counters.correct_bits, sample.metrics.correct_bits);
  registry_.add(counters.equivocating_sends, sample.metrics.equivocating_sends);
  registry_.add(counters.injected_faults, sample.metrics.injected_drops +
                                              sample.metrics.injected_duplicates +
                                              sample.metrics.injected_delays +
                                              sample.metrics.injected_forgeries +
                                              sample.metrics.injected_restarts);
  registry_.add(rounds_total_, 1);
  if (sample.has_rank_probes) {
    registry_.set(rank_spread_, sample.rank_spread);
    registry_.set(adjacent_gap_, sample.adjacent_gap);
  }
  if (sample.has_acceptance) {
    registry_.set(accepted_min_, static_cast<double>(sample.min_accepted));
    registry_.set(accepted_max_, static_cast<double>(sample.max_accepted));
    registry_.set(rejected_votes_, static_cast<double>(sample.rejected_votes));
  }
  registry_.observe(round_messages_hist_, sample.metrics.messages);
  if (sample.metrics.max_message_bits > 0) {
    registry_.observe(message_bits_hist_, sample.metrics.max_message_bits);
  }
  rows_.push_back({sample, phase});
}

void MetricsSink::write_metrics_jsonl(std::ostream& os) const {
  for (const Row& row : rows_) {
    const RoundSample& sample = row.sample;
    JsonWriter json(os);
    json.begin_object();
    json.field("schema", kMetricsSchema);
    if (!info_.label.empty()) json.field("label", info_.label);
    json.key("run").begin_object();
    json.field("algorithm", info_.algorithm)
        .field("n", info_.n)
        .field("t", info_.t)
        .field("faults", info_.faults)
        .field("adversary", info_.adversary)
        .field("seed", static_cast<std::uint64_t>(info_.seed))
        .field("iterations", info_.iterations);
    json.end_object();
    json.field("round", sample.round)
        .field("phase", core::to_string(row.phase.phase))
        .field("voting_iteration", row.phase.voting_iteration)
        .field("messages", sample.metrics.messages)
        .field("bits", sample.metrics.bits)
        .field("correct_messages", sample.metrics.correct_messages)
        .field("correct_bits", sample.metrics.correct_bits)
        .field("equivocating_sends", sample.metrics.equivocating_sends)
        .field("max_message_bits", sample.metrics.max_message_bits)
        .field("max_correct_message_bits", sample.metrics.max_correct_message_bits)
        .field("injected_drops", sample.metrics.injected_drops)
        .field("injected_duplicates", sample.metrics.injected_duplicates)
        .field("injected_delays", sample.metrics.injected_delays);
    // New-family counters are omitted when zero so the golden metrics
    // files (and their byte-compare CI gate) stay valid.
    if (sample.metrics.injected_forgeries > 0) {
      json.field("injected_forgeries", sample.metrics.injected_forgeries);
    }
    if (sample.metrics.injected_restarts > 0) {
      json.field("injected_restarts", sample.metrics.injected_restarts);
    }
    if (sample.has_acceptance) {
      json.key("accepted").begin_object();
      json.field("min", sample.min_accepted).field("max", sample.max_accepted);
      json.end_object();
      json.field("rejected_votes", sample.rejected_votes);
    }
    if (sample.has_rank_probes) {
      json.field("rank_spread", sample.rank_spread)
          .field("rank_spread_exact", sample.rank_spread_exact)
          .field("adjacent_gap", sample.adjacent_gap)
          .field("adjacent_gap_exact", sample.adjacent_gap_exact);
    }
    if (sample.has_fast_probes) {
      json.field("fast_max_discrepancy", static_cast<std::int64_t>(sample.fast_max_discrepancy))
          .field("fast_min_gap", static_cast<std::int64_t>(sample.fast_min_gap));
    }
    json.end_object();
    os << '\n';
  }
  os.flush();
}

}  // namespace byzrename::obs
