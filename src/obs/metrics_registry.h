#ifndef BYZRENAME_OBS_METRICS_REGISTRY_H
#define BYZRENAME_OBS_METRICS_REGISTRY_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/algorithm.h"
#include "core/phase.h"
#include "obs/telemetry.h"

namespace byzrename::obs {

/// Appends @p value to @p os escaped for use inside a Prometheus label
/// value's quotes: backslash, double-quote, and line-feed become \\,
/// \", and \n per the text-format spec. Shared by every exposition
/// writer in the repo so hostile values (adversary names, cell keys)
/// can never corrupt a scrape.
void write_prometheus_label_value(std::ostream& os, std::string_view value);

/// Appends @p help escaped for a # HELP line: backslash and line-feed
/// become \\ and \n (quotes are legal raw in HELP text).
void write_prometheus_help(std::ostream& os, std::string_view help);

/// Typed, allocation-light metric store: monotonic counters, gauges, and
/// exact integer histograms. Instruments are registered once (returning a
/// dense Handle) and updated by index — no string lookup ever happens on
/// the per-round path, and no update allocates. Exposition is Prometheus
/// text format (write_prometheus); the per-round JSONL timeseries and the
/// trace counter tracks are produced by MetricsSink, which owns one
/// registry per run.
class MetricsRegistry {
 public:
  using Handle = std::size_t;

  /// Registers a monotonic counter. @p phase becomes the Prometheus
  /// `phase` label; empty = unlabeled series. Series of one family
  /// (same name) may be registered at any time — exposition groups them
  /// under one # HELP/# TYPE header in first-registration order, which
  /// is what lets the service register per-tenant series as sessions
  /// arrive.
  Handle counter(std::string name, std::string help, std::string phase = {});

  /// Counter with an arbitrary single label ({session="tenant-a"}).
  /// The help text of the family's first registration wins.
  Handle labeled_counter(std::string name, std::string help, std::string label_key,
                         std::string label_value);

  /// Registers a gauge (last written value wins).
  Handle gauge(std::string name, std::string help);

  /// Gauge with an arbitrary single label.
  Handle labeled_gauge(std::string name, std::string help, std::string label_key,
                       std::string label_value);

  /// Registers an exact integer histogram over the given inclusive
  /// upper bounds (must be strictly increasing; a +Inf bucket is
  /// implicit). Counts are exact uint64 — no sampling, no decay.
  Handle histogram(std::string name, std::string help,
                   std::vector<std::uint64_t> upper_bounds);

  void add(Handle counter, std::uint64_t delta);
  void set(Handle gauge, double value);
  void observe(Handle histogram, std::uint64_t value);

  [[nodiscard]] std::uint64_t counter_value(Handle handle) const;
  [[nodiscard]] double gauge_value(Handle handle) const;
  [[nodiscard]] std::uint64_t histogram_count(Handle handle) const;
  [[nodiscard]] std::uint64_t histogram_sum(Handle handle) const;

  [[nodiscard]] bool empty() const noexcept { return instruments_.empty(); }
  void clear() { instruments_.clear(); }

  /// Exponentially spaced histogram bounds: first, first*factor, ...
  /// (@p count bounds total) — the standard shape for message/bit counts
  /// whose interesting structure spans orders of magnitude.
  [[nodiscard]] static std::vector<std::uint64_t> exponential_bounds(std::uint64_t first,
                                                                     std::uint64_t factor,
                                                                     int count);

  /// Prometheus text exposition (one # HELP/# TYPE header per family,
  /// then all of its series, families in first-registration order).
  /// Instruments never updated are skipped so a run that visits three
  /// phases does not advertise the other three as zeros. Deterministic:
  /// registration order, no timestamps.
  void write_prometheus(std::ostream& os) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instrument {
    Kind kind = Kind::kCounter;
    std::string name;
    std::string help;
    std::string label_key;    ///< e.g. "phase", "session"; empty = unlabeled
    std::string label_value;
    bool touched = false;
    std::uint64_t count = 0;  ///< counter value / histogram sample count
    double gauge = 0.0;
    std::uint64_t sum = 0;  ///< histogram sum of observed values
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> bucket_counts;  ///< bounds.size() + 1 (+Inf)
  };

  std::vector<Instrument> instruments_;
};

/// TelemetrySink that feeds a MetricsRegistry from the harness's
/// per-round samples, annotating every counter with the protocol phase
/// (core/phase.h) the round belongs to, and buffering one deterministic
/// row per round for the byzrename.metrics/1 timeseries. Attach it to
/// the run's Telemetry next to any other sink; when it is not attached
/// the run pays nothing (the registry-off case of docs/PERFORMANCE.md).
///
/// Like RunReportSink, one MetricsSink serves one run at a time.
class MetricsSink final : public TelemetrySink {
 public:
  /// One captured round: the sample plus its phase classification. The
  /// JSONL writer, the trace counter exporter, and the auditor's tests
  /// all read this buffer, so it deliberately carries no wall clocks.
  struct Row {
    RoundSample sample;
    core::RoundPhase phase;
  };

  void on_run_start(const RunInfo& info) override;
  void on_round(const RoundSample& sample) override;

  [[nodiscard]] const RunInfo& info() const noexcept { return info_; }
  [[nodiscard]] const std::vector<Row>& rows() const noexcept { return rows_; }
  [[nodiscard]] const MetricsRegistry& registry() const noexcept { return registry_; }

  /// Phase label of one captured round ("voting k=2").
  [[nodiscard]] static std::string row_label(const Row& row) {
    return core::phase_label(row.phase);
  }

  /// One byzrename.metrics/1 line per captured round (schema'd in
  /// obs/schema.h). Fully deterministic — golden-file comparable.
  void write_metrics_jsonl(std::ostream& os) const;

  /// Prometheus text dump of the run's registry (--metrics-out).
  void write_prometheus(std::ostream& os) const { registry_.write_prometheus(os); }

 private:
  struct PhaseCounters {
    MetricsRegistry::Handle messages = 0;
    MetricsRegistry::Handle bits = 0;
    MetricsRegistry::Handle correct_messages = 0;
    MetricsRegistry::Handle correct_bits = 0;
    MetricsRegistry::Handle equivocating_sends = 0;
    MetricsRegistry::Handle injected_faults = 0;
  };

  RunInfo info_;
  core::Algorithm algorithm_ = core::Algorithm::kOpRenaming;
  bool algorithm_known_ = false;
  MetricsRegistry registry_;
  std::vector<Row> rows_;
  /// One slot per core::Phase value, registered up front so the
  /// per-round path is pure array indexing.
  std::vector<PhaseCounters> per_phase_;
  MetricsRegistry::Handle rounds_total_ = 0;
  MetricsRegistry::Handle rank_spread_ = 0;
  MetricsRegistry::Handle adjacent_gap_ = 0;
  MetricsRegistry::Handle accepted_min_ = 0;
  MetricsRegistry::Handle accepted_max_ = 0;
  MetricsRegistry::Handle rejected_votes_ = 0;
  MetricsRegistry::Handle round_messages_hist_ = 0;
  MetricsRegistry::Handle message_bits_hist_ = 0;
};

}  // namespace byzrename::obs

#endif  // BYZRENAME_OBS_METRICS_REGISTRY_H
