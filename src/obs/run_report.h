#ifndef BYZRENAME_OBS_RUN_REPORT_H
#define BYZRENAME_OBS_RUN_REPORT_H

#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/telemetry.h"

namespace byzrename::obs {

/// TelemetrySink that serializes each finished run as one JSON line
/// (schema byzrename.run/1, documented in obs/schema.h). Rounds are
/// buffered between on_run_start and on_run_end; the line is written and
/// flushed on run end, so a killed sweep keeps every completed run.
///
/// One sink instance serves ONE run at a time (it buffers per-run state
/// between start and end). For parallel campaigns, give each worker its
/// own sink over the shared stream and pass the same @p write_mutex to
/// all of them: each line is rendered privately and written in a single
/// guarded append, so concurrent writers can never interleave partial
/// JSONL lines.
class RunReportSink final : public TelemetrySink {
 public:
  /// @param bench optional emitting-binary name stamped into each line.
  /// @param write_mutex optional mutex shared by every sink writing to
  ///        @p os; nullptr for single-threaded use.
  explicit RunReportSink(std::ostream& os, std::string bench = {},
                         std::mutex* write_mutex = nullptr);

  void on_run_start(const RunInfo& info) override;
  void on_round(const RoundSample& sample) override;
  void on_run_end(const RunSummary& summary) override;

 private:
  std::ostream& os_;
  std::string bench_;
  std::mutex* write_mutex_;
  RunInfo info_;
  std::vector<RoundSample> rounds_;
};

}  // namespace byzrename::obs

#endif  // BYZRENAME_OBS_RUN_REPORT_H
