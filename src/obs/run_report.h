#ifndef BYZRENAME_OBS_RUN_REPORT_H
#define BYZRENAME_OBS_RUN_REPORT_H

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/telemetry.h"

namespace byzrename::obs {

/// TelemetrySink that serializes each finished run as one JSON line
/// (schema byzrename.run/1, documented in obs/schema.h). Rounds are
/// buffered between on_run_start and on_run_end; the line is written and
/// flushed on run end, so a killed sweep keeps every completed run.
class RunReportSink final : public TelemetrySink {
 public:
  /// @param bench optional emitting-binary name stamped into each line.
  explicit RunReportSink(std::ostream& os, std::string bench = {});

  void on_run_start(const RunInfo& info) override;
  void on_round(const RoundSample& sample) override;
  void on_run_end(const RunSummary& summary) override;

 private:
  std::ostream& os_;
  std::string bench_;
  RunInfo info_;
  std::vector<RoundSample> rounds_;
};

}  // namespace byzrename::obs

#endif  // BYZRENAME_OBS_RUN_REPORT_H
