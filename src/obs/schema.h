#ifndef BYZRENAME_OBS_SCHEMA_H
#define BYZRENAME_OBS_SCHEMA_H

namespace byzrename::obs {

/// Schema identifiers stamped into every JSONL record this subsystem
/// emits. Consumers (CI validation, EXPERIMENTS.md regeneration, the
/// BENCH_*.json trajectory) dispatch on the `schema` field and must
/// reject records whose major version they do not know.
///
/// Versioning contract: the suffix is `<name>/<major>`. Within one major
/// version fields are only ever ADDED, never renamed, retyped, or
/// removed, so a consumer written against `byzrename.run/1` keeps
/// working as the producer grows. Any breaking change bumps the major.
///
/// ## byzrename.run/1 — one finished scenario per line
///
/// Stable fields (always present):
///   schema            string   "byzrename.run/1"
///   scenario          object   resolved ScenarioConfig:
///     .algorithm        string   core::to_string(Algorithm)
///     .n .t .faults     int      system size / budget / actual faults
///     .adversary        string   registry name
///     .seed             uint64
///     .iterations       int      resolved voting iterations (-1 = n/a)
///     .validate_votes   bool     Alg. 2 isValid filter enabled
///     .target_namespace int      M promised for (algorithm, n, t)
///     .round_budget     int      runner's max_rounds
///   outcome           object
///     .rounds           int      synchronous rounds actually executed
///     .terminated       bool     every correct process decided in budget
///     .wall_seconds     double   whole-run wall clock
///     .max_name .min_name int    extremes of decided names
///     .accepted         object   {min,max} |accepted| over correct procs
///     .rejected_votes   int      votes/echoes killed by validation
///     .verdict          object   CheckReport: validity, termination,
///                                uniqueness, order_preservation, all_ok,
///                                classes (canonical comma-joined violated
///                                property classes, "" when all_ok),
///                                detail (string, empty when all_ok)
///   totals            object   whole-run communication counters:
///     .messages .bits .correct_messages .correct_bits   uint64
///     .equivocating_sends uint64  targeted sends by Byzantine processes
///     .max_message_bits .max_correct_message_bits       uint64
///     .injected_drops .injected_duplicates .injected_delays  uint64
///         fault-injector interventions (0 on clean-model runs)
///     .injected_forgeries .injected_restarts  uint64  impersonation /
///         transient-restart interventions; OMITTED when zero
///   per_round         array    one object per round, in order:
///     .round            int      1-based, matches the paper's "Step r"
///     .messages .bits .correct_messages .correct_bits .equivocating_sends
///     .max_message_bits .max_correct_message_bits   uint64  largest single
///         message charged in this round (added within major 1)
///     .wall_seconds     double   wall clock of this round
///
/// Optional fields (present when the producer had them):
///   bench             string   emitting bench binary
///   label             string   free-form row label from the bench
///   scenario.fault_plan string canonical fault-plan spec (sim/fault.h);
///                              present only on fault-injected runs
///   scenario.verdict.restarted / .recovered  int  transient-restart
///       dimension: processes re-initialized mid-protocol, and how many
///       re-joined, decided, and sit in no violation; present only when
///       restarted > 0
///   per_round[i].accepted        object {min,max}, Alg. 1/4 runs only
///   per_round[i].rejected_votes  int, cumulative up to this round
///   per_round[i].rank_spread / .rank_spread_exact    double / string
///       max_rank_spread(timely) — the Delta_r of Lemmas IV.7-9
///   per_round[i].adjacent_gap / .adjacent_gap_exact  double / string
///       min_adjacent_rank_gap — Corollary IV.6's delta-gap
///   per_round[i].fast_max_discrepancy / .fast_min_gap  int
///       Alg. 4 probe quantities (Lemmas VI.1 / VI.2)
///
/// ## byzrename.series/1 — free-form bench series
///
/// For benches whose measurements are not scenario runs (e.g. the scalar
/// AA contraction series of F3):
///   schema   string  "byzrename.series/1"
///   bench    string  emitting bench binary
///   label    string  row label
///   values   object  string -> double measurement map
///
/// ## byzrename.campaign/1 — one campaign cell aggregate per line
///
/// Produced by the src/exp campaign engine (docs/CAMPAIGNS.md). Every
/// field is DETERMINISTIC — a pure function of the spec and the per-run
/// counters, never of wall clocks or thread scheduling — so two files
/// from the same spec compare byte-for-byte regardless of --threads and
/// the union of --shard i/k outputs equals the unsharded file.
///
///   schema            string   "byzrename.campaign/1"
///   campaign          string   CampaignSpec::name
///   cell              string   "algorithm/nN/tT/adversary" join key
///   cell_index        int      position in the full (unsharded) expansion
///   algorithm n t adversary    the cell coordinates, as separate fields
///   reps              int      repetitions requested per cell
///   master_seed       uint64   campaign master seed
///   executed ok terminated int  run counts (executed < reps after fail-fast)
///   quarantined       int      runs excluded after exhausting retries.
///                              DETERMINISTIC only for exception-kind
///                              quarantines; with a run timeout configured
///                              the count may vary across machines — CI's
///                              byte-compare gate runs without timeouts
///   degradation       object   {termination,range,uniqueness,order}: runs
///                              violating each property class (a run can
///                              count toward several)
///   max_message_bits  uint64   largest message over the cell's runs
///   stats             object   per-metric aggregate objects, each
///                              {count,min,max,sum,mean,p50,p95,p99} with
///                              integer quantiles (nearest-rank samples):
///     .rounds .messages .correct_messages .bits .max_name .rejected_votes
///   first_violation   object?  {rep, detail} of the lowest-rep failing
///                              run; absent when the cell is clean
///   per_round         array?   present only with round-level aggregation
///                              enabled (--round-stats). One object per
///                              round index across the cell's runs:
///                              {round, messages, bits, correct_messages,
///                              equivocating_sends}, each the same
///                              deterministic aggregate object as stats.*
///                              (count < executed when some runs ended
///                              before this round). Added within major 1.
///
/// ## byzrename.campaign-summary/1 — one closing line per execution
///
/// The volatile counterpart (wall clock, thread count, steal count);
/// separate schema precisely because it is NOT deterministic:
///   schema cells runs executed violations quarantined cancelled threads
///   steals wall_seconds
///   interrupted       bool     true when the execution was stopped by an
///                              operator interrupt (SIGINT/SIGTERM through
///                              the campaign CLI); the cell lines then
///                              cover only the runs that finished. Added
///                              within major 1.
///   quarantined_runs  array  one object per quarantined run:
///     {cell, cell_index, rep, seed, kind, attempts, detail}
///   (quarantine lives here, not in campaign/1 cell lines, because
///   timeout-kind quarantines depend on wall clocks)
///
/// ## byzrename.progress/1 — live campaign progress snapshot
///
/// The body of GET /progress on the obs/http telemetry plane (and
/// nothing else: it is a point-in-time observation, never written into
/// recorded outputs). VOLATILE by construction — wall clocks, EWMA
/// throughput, and worker occupancy all enter it. One JSON document per
/// request:
///   schema            string   "byzrename.progress/1"
///   campaign          string   CampaignSpec::name ("" before begin)
///   state             string   idle | running | done | interrupted
///   total_runs        int      cells x repetitions this execution owns
///   completed ok violations quarantined   int   monotonic run counts
///   elapsed_seconds   double   frozen once the campaign finishes
///   runs_per_second   double   EWMA completion throughput (tau = 5 s)
///   runs_per_second_mean double  completed / elapsed
///   eta_seconds       double   remaining / throughput; 0 when done,
///                              negative while not yet estimable
///   rate_source       string   which throughput fed eta_seconds:
///                              "ewma" (warm EWMA), "mean" (EWMA not yet
///                              warm, completed/elapsed used instead), or
///                              "none" (no completions yet; eta_seconds
///                              is the -1 sentinel)
///   workers           object   {total, busy} executor occupancy
///   cells             array    one {cell, total, completed, ok,
///                              violations, quarantined} per cell, in
///                              deterministic expansion order
///
/// ## byzrename.metrics/1 — one protocol round per line
///
/// The round-resolved timeseries produced by obs::MetricsSink
/// (--metrics-jsonl). Fully DETERMINISTIC — no wall clocks — so a file
/// is golden-file comparable across machines and thread counts.
///
/// Stable fields (always present):
///   schema            string   "byzrename.metrics/1"
///   run               object   run identity:
///     .algorithm        string   core::to_string(Algorithm)
///     .n .t .faults     int
///     .adversary        string
///     .seed             uint64
///     .iterations       int      resolved voting iterations (-1 = n/a)
///   round             int      1-based synchronous round
///   phase             string   core/phase.h taxonomy: selection | echo |
///                              ready | voting | decision | protocol
///   voting_iteration  int      k of Lemma IV.8's Delta_r inside the
///                              voting loop; 0 outside it
///   messages bits correct_messages correct_bits equivocating_sends
///   max_message_bits max_correct_message_bits     uint64 round counters
///   injected_drops injected_duplicates injected_delays  uint64
///
/// Optional fields (same guards as byzrename.run/1 per_round entries):
///   injected_forgeries / injected_restarts  uint64  omitted when zero
///   label             string   free-form row label
///   accepted          object   {min,max}, Alg. 1/4 runs only
///   rejected_votes    int      cumulative up to this round
///   rank_spread / rank_spread_exact      double / string   Delta_r
///   adjacent_gap / adjacent_gap_exact    double / string
///   fast_max_discrepancy / fast_min_gap  int    Alg. 4 probes
///
/// ## byzrename.audit/1 — one complexity verdict per run
///
/// Produced by obs::ComplexityAuditor (--audit / --audit-out): the
/// paper's closed-form budgets evaluated against the finished run.
/// Deterministic (no wall clock enters any bound).
///
///   schema            string   "byzrename.audit/1"
///   label             string?  free-form row label
///   run               object   algorithm n t faults adversary seed
///                              iterations round_budget
///   verdict           object   {complete, all_ok, bounds_checked,
///                              violations}
///   bounds            array    one object per evaluated bound:
///     .bound            string   stable id: steps | messages | bit_size |
///                                rank_contraction | fast_discrepancy |
///                                fast_gap
///     .formula          string   the paper's closed form, as text
///     .direction        string   "upper" (observed <= limit) or "lower"
///     .limit .observed  double
///     .ok               bool
///     .detail           string?  where the extreme was seen
///
/// ## byzrename.repro/1 — one self-contained failure reproduction
///
/// Written by the shrinker (tools/byzrename-shrink) and by the campaign
/// engine's quarantine path; replayed by `byzrename --repro`. One JSON
/// document (not JSONL):
///   schema            string   "byzrename.repro/1"
///   campaign cell rep string/int?  provenance of the original failure
///   scenario          object   the portable scenario:
///     .algorithm        string   CLI token ("op", "fast", ...)
///     .n .t .faults     int      system; faults == -1 means t
///     .adversary        string   registry name
///     .seed             uint64   exact run seed (NOT campaign-derived)
///     .iterations       int      -1 = algorithm default
///     .validate_votes   bool
///     .extra_rounds     int
///     .fault_plan       string   sim/fault.h spec grammar; "" = clean
///   expected          object   the verdict the scenario must reproduce:
///     .kind             string   none|violation|exception|timeout
///     .classes          string   comma-joined violated property classes
///     .detail .rounds .terminated .max_name
///
/// ## byzrename.repro-verdict/1 — outcome of one --repro replay
///
/// Deterministic: no wall clock, no thread count — two replays of one
/// bundle compare byte-for-byte regardless of --threads:
///   schema scenario expected   as in byzrename.repro/1
///   observed          object   verdict of this replay (same shape)
///   replays           int      how many times the scenario was run
///   consistent        bool     all replays produced identical verdicts
///   matches_expected  bool     observed == expected
///
/// ## byzrename.buildinfo/1 — identity of the serving binary
///
/// The body of GET /buildinfo on every serve surface (byzrename
/// --serve, byzrename-campaign --serve, byzrenamed). One JSON document:
///   schema            string   "byzrename.buildinfo/1"
///   version           string   project version
///   git_sha           string   HEAD at configure time; "unknown" outside git
///   build_type        string   CMAKE_BUILD_TYPE
///   compiler          string   compiler id + version
///   sanitizers        string   "address,undefined" | "thread" | "none"
///
/// ## byzrename.profile/1 — phase-attributed profile tree
///
/// Written by the obs/prof profiling plane: `byzrename --profile-out`
/// (kind "run"), `byzrename-campaign --profile-out` (kind "cell", one
/// line per cell), and served live as GET /profile next to /metrics.
/// One JSON document per line.
///
/// Shared envelope:
///   schema            string   "byzrename.profile/1"
///   kind              string   "run" | "cell"
///   hw_counters       bool     perf_event_open delivered at least one
///                              hardware counter; when false every
///                              volatile counter field reads 0
///   alloc_counting    bool     the binary interposed operator new
///                              (obs/prof/alloc_interpose.h); when false
///                              allocs/alloc_bytes read 0, not "no
///                              allocations"
///   nodes             array    the scope tree, parents before children
///
/// Per node, DETERMINISTIC fields (byte-identical across machines and
/// campaign --threads counts for a fixed scenario set):
///   path              string   semicolon-joined scope path from the
///                              top ("run;voting k=2")
///   name depth        string/int   leaf label and 0-based depth
///   calls             uint64   times the scope was entered
///   allocs alloc_bytes uint64  operator-new count/bytes attributed to
///                              the scope's thread while it was open
///   node_runs         uint64   (kind "cell" only) runs whose trees
///                              contained this path
///
/// VOLATILE fields — wall clocks and machine counters, never compared
/// byte-for-byte — are quarantined under one sub-object so consumers
/// can strip them mechanically (jq 'walk(if type == "object" then
/// del(.volatile) else . end)'):
///   volatile          object   {wall_seconds, cpu_seconds, cycles,
///                              instructions, llc_misses, branch_misses}
///
/// kind "run" adds: label (string, optional row id).
/// kind "cell" adds: campaign, cell (string ids), cell_index (int),
/// runs (int, trees merged into the aggregate); nodes are path-sorted
/// and counter fields are sums over those runs.
///
/// ## byzrename service API (docs/SERVICE.md) — the byzrenamed daemon
///
/// Request bodies are parsed with obs::parse_json (depth-capped,
/// duplicate keys rejected) because they arrive from clients, not from
/// this repo's own writers. Scenario and verdict objects reuse the
/// byzrename.repro/1 shapes verbatim — the daemon serializes them
/// through the same exp:: writers, which is what makes service verdicts
/// byte-comparable against `byzrename --verdict-out` output.
///
/// byzrename.session/1 — POST /v1/session request:
///   schema            string   "byzrename.session/1"
///   tenant            string   non-empty operator-chosen tenant label;
///                              also the `session` Prometheus label value
///
/// byzrename.session-ack/1 — its 200 response:
///   schema session             the session id equals the tenant label
///
/// byzrename.submit/1 — POST /v1/submit request:
///   schema            string   "byzrename.submit/1"
///   session           string   id from session-ack/1
///   instances         array    byzrename.repro/1 scenario objects
///
/// byzrename.submit-ack/1 — its 202 response:
///   schema session accepted    accepted == len(instances)
///   first_id          uint64   ids are first_id .. first_id+accepted-1,
///                              in submission order
///
/// byzrename.poll/1 — GET /v1/poll?session=S&cursor=N[&max=K][&wait_ms=T]:
///   schema session             as submitted
///   cursor            uint64   pass back to resume after these items
///   pending           int      submitted but not yet completed
///   draining          bool     daemon is shutting down
///   items             array    byzrename.verdict/1 objects, completion order
///
/// byzrename.verdict/1 — one finished instance:
///   schema            string   "byzrename.verdict/1"
///   id                uint64   omitted in `byzrename --verdict-out`
///   session           string   omitted in `byzrename --verdict-out`
///   status            string   done | cancelled (cancelled = drained
///                              from the queue before running; no verdict)
///   scenario          object   byzrename.repro/1 scenario shape
///   verdict           object?  byzrename.repro/1 expected shape (kind,
///                              classes, detail, rounds, terminated,
///                              max_name); absent when status=cancelled
///
/// byzrename.error/1 — body of every non-2xx service response:
///   schema error      string   error is human-readable; 429 responses
///                              additionally carry a Retry-After header
inline constexpr const char* kRunSchema = "byzrename.run/1";
inline constexpr const char* kSeriesSchema = "byzrename.series/1";
inline constexpr const char* kMetricsSchema = "byzrename.metrics/1";
inline constexpr const char* kAuditSchema = "byzrename.audit/1";
inline constexpr const char* kCampaignSchema = "byzrename.campaign/1";
inline constexpr const char* kCampaignSummarySchema = "byzrename.campaign-summary/1";
inline constexpr const char* kProgressSchema = "byzrename.progress/1";
inline constexpr const char* kReproSchema = "byzrename.repro/1";
inline constexpr const char* kReproVerdictSchema = "byzrename.repro-verdict/1";
inline constexpr const char* kBuildinfoSchema = "byzrename.buildinfo/1";
inline constexpr const char* kSessionSchema = "byzrename.session/1";
inline constexpr const char* kSessionAckSchema = "byzrename.session-ack/1";
inline constexpr const char* kSubmitSchema = "byzrename.submit/1";
inline constexpr const char* kSubmitAckSchema = "byzrename.submit-ack/1";
inline constexpr const char* kPollSchema = "byzrename.poll/1";
inline constexpr const char* kVerdictSchema = "byzrename.verdict/1";
inline constexpr const char* kErrorSchema = "byzrename.error/1";
inline constexpr const char* kProfileSchema = "byzrename.profile/1";

}  // namespace byzrename::obs

#endif  // BYZRENAME_OBS_SCHEMA_H
