#ifndef BYZRENAME_SVC_API_H
#define BYZRENAME_SVC_API_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "exp/repro.h"

namespace byzrename::svc {

/// Wire types of the byzrenamed service API (schemas in obs/schema.h,
/// prose in docs/SERVICE.md). Scenario and verdict objects serialize
/// through the exp::write_repro_* helpers — the same code path as repro
/// bundles and `byzrename --verdict-out` — so a service verdict is
/// byte-comparable against any other surface that ran the same
/// scenario.

/// Lifecycle of one submitted instance as reported by poll.
enum class InstanceStatus {
  kDone,       ///< executed; verdict present
  kCancelled,  ///< drained from the queue before running; no verdict
};

[[nodiscard]] constexpr std::string_view to_string(InstanceStatus status) noexcept {
  switch (status) {
    case InstanceStatus::kDone: return "done";
    case InstanceStatus::kCancelled: return "cancelled";
  }
  return "unknown";
}

/// One finished (or drained) instance: a byzrename.verdict/1 item.
struct InstanceResult {
  std::uint64_t id = 0;
  std::string session;
  InstanceStatus status = InstanceStatus::kDone;
  exp::ReproScenario scenario;
  exp::ReproVerdict verdict;  ///< meaningful only when status == kDone

  friend bool operator==(const InstanceResult&, const InstanceResult&) = default;
};

/// POST /v1/submit body after validation.
struct SubmitRequest {
  std::string session;
  std::vector<exp::ReproScenario> instances;
};

/// Tenant/session identifiers flow into Prometheus label values and
/// query strings, so they are restricted to [A-Za-z0-9._-], 1..64 chars.
[[nodiscard]] bool valid_session_name(std::string_view name);

/// Parses a byzrename.session/1 body; throws std::invalid_argument on
/// malformed JSON, a wrong schema, or an invalid tenant name.
[[nodiscard]] std::string parse_session_request(std::string_view body);

/// Parses a byzrename.submit/1 body; throws std::invalid_argument on
/// malformed JSON, a wrong schema, an invalid session name, or an empty
/// instance list.
[[nodiscard]] SubmitRequest parse_submit_request(std::string_view body);

/// Splits "session=a&cursor=12" into key -> value (no URL decoding:
/// every value the API accepts is already percent-free). Repeated keys
/// throw std::invalid_argument.
[[nodiscard]] std::map<std::string, std::string, std::less<>> parse_query(
    std::string_view query);

void write_session_ack(std::ostream& os, const std::string& session);
void write_submit_ack(std::ostream& os, const std::string& session, std::uint64_t first_id,
                      std::size_t accepted);

/// One byzrename.verdict/1 document per item inside the poll response.
void write_poll_response(std::ostream& os, const std::string& session,
                         const std::vector<InstanceResult>& items, std::uint64_t cursor,
                         std::size_t pending, bool draining);

/// Identity-free byzrename.verdict/1 document (no id, no session): the
/// `byzrename --verdict-out` format, and the normal form the service
/// bench byte-compares daemon results against.
void write_verdict_document(std::ostream& os, const exp::ReproScenario& scenario,
                            const exp::ReproVerdict& verdict);

/// byzrename.error/1 body for a non-2xx response. A non-empty @p code
/// adds a machine-readable `code` field so clients can branch without
/// parsing the message ("cursor-evicted" is the first such code; plain
/// errors omit the field and keep their pre-code bytes).
void write_error(std::ostream& os, std::string_view message, std::string_view code = {});

}  // namespace byzrename::svc

#endif  // BYZRENAME_SVC_API_H
