#include "svc/admission.h"

#include <algorithm>
#include <cmath>

namespace byzrename::svc {

namespace {

/// Retry-After from the work the client must wait out: overload divided
/// by the observed drain rate, clamped to [1, 30] seconds so a stalled
/// EWMA can neither demand instant retries nor park clients forever.
int retry_after(std::size_t overload, double drain_rate) {
  if (drain_rate <= 0.0) return 5;
  const double seconds = static_cast<double>(overload) / drain_rate;
  return static_cast<int>(std::clamp(std::ceil(seconds), 1.0, 30.0));
}

}  // namespace

AdmissionDecision AdmissionController::decide(std::size_t batch_size, std::size_t global_queued,
                                              std::size_t session_inflight,
                                              double drain_rate) const {
  AdmissionDecision decision;
  if (batch_size > limits_.max_batch) {
    // A structural limit, not a load condition: retrying the same batch
    // later cannot succeed, so say so instead of suggesting a wait.
    decision.admitted = false;
    decision.reason = "batch of " + std::to_string(batch_size) + " exceeds max_batch " +
                      std::to_string(limits_.max_batch) + "; split the request";
    decision.retry_after_seconds = 0;
    return decision;
  }
  if (global_queued + batch_size > limits_.max_queue_depth) {
    decision.admitted = false;
    decision.reason = "queue depth " + std::to_string(global_queued) + " + batch " +
                      std::to_string(batch_size) + " exceeds max_queue_depth " +
                      std::to_string(limits_.max_queue_depth);
    decision.retry_after_seconds =
        retry_after(global_queued + batch_size - limits_.max_queue_depth, drain_rate);
    return decision;
  }
  if (session_inflight + batch_size > limits_.max_session_inflight) {
    decision.admitted = false;
    decision.reason = "session in-flight " + std::to_string(session_inflight) + " + batch " +
                      std::to_string(batch_size) + " exceeds max_session_inflight " +
                      std::to_string(limits_.max_session_inflight);
    decision.retry_after_seconds =
        retry_after(session_inflight + batch_size - limits_.max_session_inflight, drain_rate);
    return decision;
  }
  return decision;
}

}  // namespace byzrename::svc
