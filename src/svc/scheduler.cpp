#include "svc/scheduler.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/prof/profiler.h"

namespace byzrename::svc {

namespace {

/// EWMA time constant for the completion-rate estimate behind
/// Retry-After; matches exp::ProgressTracker's throughput horizon.
constexpr double kEwmaTauSeconds = 5.0;

}  // namespace

Scheduler::Scheduler(SchedulerOptions options)
    : options_(std::move(options)), admission_(options_.admission), executor_(options_.threads) {
  if (options_.fair_quantum == 0) options_.fair_quantum = 1;
  sessions_gauge_ = registry_.gauge("byzrenamed_sessions", "Open sessions.");
  queued_gauge_ = registry_.gauge("byzrenamed_queued_instances",
                                  "Instances admitted but not yet dispatched.");
  running_gauge_ = registry_.gauge("byzrenamed_running_instances",
                                   "Instances currently executing on the executor.");
  draining_gauge_ = registry_.gauge("byzrenamed_draining",
                                    "1 while shutdown is draining, else 0.");
  latency_hist_ = registry_.histogram(
      "byzrenamed_completion_latency_microseconds",
      "Enqueue-to-completion latency of executed instances.",
      obs::MetricsRegistry::exponential_bounds(64, 2, 20));
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    update_gauges_locked();
  }
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

Scheduler::~Scheduler() { shutdown(DrainMode::kCancelQueued); }

bool Scheduler::open_session(const std::string& session) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return false;
  if (sessions_.contains(session)) return false;
  Session& created = sessions_[session];
  created.submitted = registry_.labeled_counter("byzrenamed_instances_submitted_total",
                                                "Instances admitted, by session.", "session",
                                                session);
  created.completed = registry_.labeled_counter("byzrenamed_instances_completed_total",
                                                "Instances executed, by session.", "session",
                                                session);
  created.ok = registry_.labeled_counter("byzrenamed_instances_ok_total",
                                         "Executed instances whose four renaming properties "
                                         "all held, by session.",
                                         "session", session);
  created.violations = registry_.labeled_counter("byzrenamed_instances_violations_total",
                                                 "Executed instances the checker flagged, by "
                                                 "session.",
                                                 "session", session);
  created.cancelled = registry_.labeled_counter("byzrenamed_instances_cancelled_total",
                                                "Instances cancelled by shutdown drain, by "
                                                "session.",
                                                "session", session);
  created.rejected = registry_.labeled_counter("byzrenamed_instances_rejected_total",
                                               "Instances rejected by admission control, by "
                                               "session.",
                                               "session", session);
  created.evicted_metric = registry_.labeled_counter(
      "byzrenamed_results_evicted_total",
      "Completed results dropped by the retention window, by session.", "session", session);
  created.cpu_micros = registry_.labeled_counter(
      "byzrenamed_tenant_cpu_microseconds_total",
      "Worker thread CPU time spent evaluating this session's instances.", "session", session);
  update_gauges_locked();
  return true;
}

Scheduler::SubmitOutcome Scheduler::submit(const std::string& session,
                                           std::vector<exp::ReproScenario> instances) {
  const std::lock_guard<std::mutex> lock(mutex_);
  SubmitOutcome outcome;
  if (stopping_) {
    outcome.draining = true;
    outcome.reason = "service is draining";
    return outcome;
  }
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    outcome.unknown_session = true;
    outcome.reason = "unknown session '" + session + "'";
    return outcome;
  }
  Session& state = it->second;
  const std::size_t inflight = state.submitted_total - state.completed_total();
  const AdmissionDecision decision =
      admission_.decide(instances.size(), total_queued_, inflight, drain_rate_locked());
  if (!decision.admitted) {
    registry_.add(state.rejected, instances.size());
    outcome.reason = decision.reason;
    outcome.retry_after_seconds = decision.retry_after_seconds;
    return outcome;
  }
  outcome.admitted = true;
  outcome.first_id = next_id_;
  outcome.accepted = instances.size();
  const auto now = std::chrono::steady_clock::now();
  for (exp::ReproScenario& scenario : instances) {
    state.queue.push_back(Queued{next_id_++, std::move(scenario), now});
  }
  state.submitted_total += outcome.accepted;
  total_queued_ += outcome.accepted;
  registry_.add(state.submitted, outcome.accepted);
  update_gauges_locked();
  dispatch_cv_.notify_one();
  return outcome;
}

Scheduler::PollResult Scheduler::poll(const std::string& session, std::uint64_t cursor,
                                      std::size_t max_items, int wait_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = sessions_.find(session);
  PollResult result;
  if (it == sessions_.end()) {
    result.unknown_session = true;
    return result;
  }
  Session& state = it->second;
  // A cursor below the retention window names results that no longer
  // exist; replaying from oldest_cursor is the only honest continuation,
  // and silently skipping would hide the gap from the client.
  if (cursor < state.evicted) {
    result.evicted = true;
    result.cursor = cursor;
    result.oldest_cursor = state.evicted;
    result.pending = state.submitted_total - state.completed_total();
    result.draining = stopping_;
    return result;
  }
  if (wait_ms > 0 && state.completed_total() <= cursor) {
    // Long-poll: woken by each completion; gives up at the deadline or
    // as soon as nothing further can arrive.
    results_cv_.wait_for(lock, std::chrono::milliseconds(wait_ms), [&] {
      return state.completed_total() > cursor ||
             (stopping_ && total_queued_ == 0 && total_running_ == 0);
    });
  }
  // Eviction may have overtaken the cursor while the long-poll slept.
  if (cursor < state.evicted) {
    result.evicted = true;
    result.cursor = cursor;
    result.oldest_cursor = state.evicted;
    result.pending = state.submitted_total - state.completed_total();
    result.draining = stopping_;
    return result;
  }
  const std::uint64_t begin = std::min<std::uint64_t>(cursor, state.completed_total());
  const auto local = static_cast<std::size_t>(begin - state.evicted);
  const std::size_t available = state.done.size() - local;
  const std::size_t take = max_items == 0 ? available : std::min(available, max_items);
  result.items.assign(state.done.begin() + static_cast<std::ptrdiff_t>(local),
                      state.done.begin() + static_cast<std::ptrdiff_t>(local + take));
  result.cursor = begin + take;
  result.oldest_cursor = state.evicted;
  result.pending = state.submitted_total - state.completed_total();
  result.draining = stopping_;
  return result;
}

void Scheduler::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  results_cv_.wait(lock, [&] { return total_queued_ == 0 && total_running_ == 0; });
}

void Scheduler::shutdown(DrainMode mode) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!stopping_) {
      stopping_ = true;
      drain_mode_ = mode;
      update_gauges_locked();
    }
    dispatch_cv_.notify_all();
    results_cv_.notify_all();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
}

bool Scheduler::draining() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stopping_;
}

void Scheduler::write_metrics(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  registry_.write_prometheus(os);
}

void Scheduler::dispatch_loop() {
  struct Work {
    std::string session_name;
    Session* session = nullptr;
    Queued item;
  };

  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    dispatch_cv_.wait(lock, [&] { return stopping_ || total_queued_ > 0; });
    if (stopping_ && drain_mode_ == DrainMode::kCancelQueued && total_queued_ > 0) {
      // The PR 6 cooperative-cancellation shape at service granularity:
      // instances that never started report status "cancelled" instead
      // of silently vanishing, so a draining client can reconcile ids.
      for (auto& [name, state] : sessions_) {
        while (!state.queue.empty()) {
          Queued queued = std::move(state.queue.front());
          state.queue.pop_front();
          --total_queued_;
          InstanceResult cancelled;
          cancelled.id = queued.id;
          cancelled.session = name;
          cancelled.status = InstanceStatus::kCancelled;
          cancelled.scenario = std::move(queued.scenario);
          record_result_locked(state, std::move(cancelled), queued.enqueued);
        }
      }
    }
    if (total_queued_ == 0) {
      if (stopping_) break;
      continue;
    }

    // Fair round-robin gather: up to fair_quantum per session per
    // sweep, sessions in name order, until the batch cap or all queues
    // are dry. A session with one instance and a session with a
    // thousand both make progress every batch.
    const std::size_t cap =
        std::max<std::size_t>(64, static_cast<std::size_t>(executor_.threads()) * 8);
    std::vector<Work> batch;
    bool took_any = true;
    while (batch.size() < cap && took_any) {
      took_any = false;
      for (auto& [name, state] : sessions_) {
        const std::size_t take =
            std::min({options_.fair_quantum, state.queue.size(), cap - batch.size()});
        for (std::size_t i = 0; i < take; ++i) {
          batch.push_back(Work{name, &state, std::move(state.queue.front())});
          state.queue.pop_front();
        }
        if (take > 0) took_any = true;
        if (batch.size() >= cap) break;
      }
    }
    total_queued_ -= batch.size();
    total_running_ += batch.size();
    update_gauges_locked();

    lock.unlock();
    executor_.run(batch.size(), [this, &batch](std::size_t index) {
      Work& work = batch[index];
      // Outside the mutex: the verdict computation is the service's
      // entire CPU budget. Deterministic per the harness re-entrancy
      // contract, so concurrency cannot change it. The thread-CPU delta
      // around it is exactly this tenant's cost (one instance per
      // worker thread at a time).
      const std::uint64_t cpu_before = obs::prof::thread_cpu_ns();
      exp::ReproVerdict verdict = exp::evaluate_scenario(work.item.scenario);
      const std::uint64_t cpu_after = obs::prof::thread_cpu_ns();
      InstanceResult result;
      result.id = work.item.id;
      result.session = work.session_name;
      result.status = InstanceStatus::kDone;
      result.scenario = std::move(work.item.scenario);
      result.verdict = std::move(verdict);
      const std::lock_guard<std::mutex> inner(mutex_);
      --total_running_;
      if (cpu_after > cpu_before) {
        registry_.add(work.session->cpu_micros, (cpu_after - cpu_before) / 1000);
      }
      record_result_locked(*work.session, std::move(result), work.item.enqueued);
    });
    lock.lock();
  }
}

void Scheduler::record_result_locked(Session& session, InstanceResult result,
                                     std::chrono::steady_clock::time_point enqueued) {
  double latency_seconds = 0.0;
  if (result.status == InstanceStatus::kDone) {
    registry_.add(session.completed, 1);
    if (result.verdict.kind == exp::FailureKind::kNone) {
      registry_.add(session.ok, 1);
    } else if (result.verdict.kind == exp::FailureKind::kViolation) {
      registry_.add(session.violations, 1);
    }
    const auto now = std::chrono::steady_clock::now();
    latency_seconds = std::chrono::duration<double>(now - enqueued).count();
    registry_.observe(latency_hist_,
                      static_cast<std::uint64_t>(std::max(latency_seconds, 0.0) * 1e6));
    if (has_completion_) {
      const double dt = std::max(
          std::chrono::duration<double>(now - last_completion_).count(), 1e-9);
      const double alpha = 1.0 - std::exp(-dt / kEwmaTauSeconds);
      ewma_rate_ += alpha * (1.0 / dt - ewma_rate_);
    }
    last_completion_ = now;
    has_completion_ = true;
  } else {
    registry_.add(session.cancelled, 1);
  }
  if (options_.on_complete) options_.on_complete(result, latency_seconds);
  session.done.push_back(std::move(result));
  // Retention window: the store stays bounded no matter how long the
  // daemon lives; clients that fall more than the cap behind get a
  // cursor-evicted poll instead of unbounded memory here.
  if (options_.retention_cap > 0) {
    while (session.done.size() > options_.retention_cap) {
      session.done.pop_front();
      session.evicted += 1;
      registry_.add(session.evicted_metric, 1);
    }
  }
  update_gauges_locked();
  results_cv_.notify_all();
}

void Scheduler::update_gauges_locked() {
  registry_.set(sessions_gauge_, static_cast<double>(sessions_.size()));
  registry_.set(queued_gauge_, static_cast<double>(total_queued_));
  registry_.set(running_gauge_, static_cast<double>(total_running_));
  registry_.set(draining_gauge_, stopping_ ? 1.0 : 0.0);
}

double Scheduler::drain_rate_locked() const { return ewma_rate_; }

}  // namespace byzrename::svc
