#ifndef BYZRENAME_SVC_ADMISSION_H
#define BYZRENAME_SVC_ADMISSION_H

#include <cstddef>
#include <string>

namespace byzrename::svc {

/// Bounds the scheduler enforces at submit time. All three are
/// deliberately generous defaults for a loopback service; the daemon
/// exposes them as flags.
struct AdmissionLimits {
  /// Queued (not yet running) instances across all sessions. The global
  /// backstop: beyond it the daemon sheds load instead of growing an
  /// unbounded queue.
  std::size_t max_queue_depth = 4096;
  /// Submitted-but-not-completed instances one session may hold. The
  /// fairness backstop: one tenant cannot occupy the whole queue.
  std::size_t max_session_inflight = 1024;
  /// Instances per submit request.
  std::size_t max_batch = 512;
};

/// Outcome of one admission check. A rejected batch is rejected whole —
/// partial admission would make first_id arithmetic ambiguous for the
/// client.
struct AdmissionDecision {
  bool admitted = true;
  std::string reason;          ///< human-readable, for the error body
  int retry_after_seconds = 0; ///< Retry-After header value when rejected
};

/// Pure admission policy: no clocks, no locks, no state — the scheduler
/// feeds it a snapshot and relays the decision as 429/Retry-After. Kept
/// separate from the scheduler so the policy is unit-testable without
/// threads.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionLimits limits = {}) : limits_(limits) {}

  [[nodiscard]] const AdmissionLimits& limits() const noexcept { return limits_; }

  /// @param batch_size        instances in the submit request
  /// @param global_queued     queued instances across all sessions
  /// @param session_inflight  submitted-but-not-completed for this session
  /// @param drain_rate        recent completions/second (EWMA); <= 0 when
  ///                          unknown. Only shapes Retry-After, never the
  ///                          admit/reject decision.
  [[nodiscard]] AdmissionDecision decide(std::size_t batch_size, std::size_t global_queued,
                                         std::size_t session_inflight,
                                         double drain_rate) const;

 private:
  AdmissionLimits limits_;
};

}  // namespace byzrename::svc

#endif  // BYZRENAME_SVC_ADMISSION_H
