#include "svc/api.h"

#include <ostream>
#include <stdexcept>

#include "obs/json.h"
#include "obs/json_parse.h"
#include "obs/schema.h"

namespace byzrename::svc {

namespace {

/// Instances per submit the parser will even look at; the admission
/// controller applies the configured (usually tighter) limit after
/// parsing, but a hostile body should not allocate unboundedly first.
constexpr std::size_t kParseMaxInstances = 65536;

const obs::JsonValue parse_document(std::string_view body, const char* expected_schema) {
  obs::JsonValue doc = obs::parse_json(body);
  const std::string& schema = doc.at("schema").as_string();
  if (schema != expected_schema) {
    throw std::invalid_argument("expected schema '" + std::string(expected_schema) +
                                "', got '" + schema + "'");
  }
  return doc;
}

void write_verdict_fields(obs::JsonWriter& json, const exp::ReproScenario& scenario,
                          InstanceStatus status, const exp::ReproVerdict& verdict) {
  json.field("status", to_string(status));
  exp::write_repro_scenario(json, scenario);
  if (status == InstanceStatus::kDone) {
    json.key("verdict").begin_object();
    exp::write_repro_verdict_body(json, verdict);
    json.end_object();
  }
}

}  // namespace

bool valid_session_name(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string parse_session_request(std::string_view body) {
  const obs::JsonValue doc = parse_document(body, obs::kSessionSchema);
  const std::string& tenant = doc.at("tenant").as_string();
  if (!valid_session_name(tenant)) {
    throw std::invalid_argument("tenant must match [A-Za-z0-9._-]{1,64}");
  }
  return tenant;
}

SubmitRequest parse_submit_request(std::string_view body) {
  const obs::JsonValue doc = parse_document(body, obs::kSubmitSchema);
  SubmitRequest request;
  request.session = doc.at("session").as_string();
  if (!valid_session_name(request.session)) {
    throw std::invalid_argument("session must match [A-Za-z0-9._-]{1,64}");
  }
  const obs::JsonValue::Array& instances = doc.at("instances").as_array();
  if (instances.empty()) throw std::invalid_argument("instances must be non-empty");
  if (instances.size() > kParseMaxInstances) {
    throw std::invalid_argument("instances exceeds the parse cap of " +
                                std::to_string(kParseMaxInstances));
  }
  request.instances.reserve(instances.size());
  for (const obs::JsonValue& instance : instances) {
    request.instances.push_back(exp::parse_repro_scenario(instance));
  }
  return request;
}

std::map<std::string, std::string, std::less<>> parse_query(std::string_view query) {
  std::map<std::string, std::string, std::less<>> params;
  std::size_t start = 0;
  while (start <= query.size() && !query.empty()) {
    std::size_t end = query.find('&', start);
    if (end == std::string_view::npos) end = query.size();
    const std::string_view pair = query.substr(start, end - start);
    if (!pair.empty()) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        throw std::invalid_argument("query parameter without '=': '" + std::string(pair) + "'");
      }
      const auto [it, inserted] =
          params.emplace(std::string(pair.substr(0, eq)), std::string(pair.substr(eq + 1)));
      if (!inserted) {
        throw std::invalid_argument("repeated query parameter '" + it->first + "'");
      }
    }
    if (end == query.size()) break;
    start = end + 1;
  }
  return params;
}

void write_session_ack(std::ostream& os, const std::string& session) {
  obs::JsonWriter json(os);
  json.begin_object()
      .field("schema", obs::kSessionAckSchema)
      .field("session", session)
      .end_object();
  os << '\n';
}

void write_submit_ack(std::ostream& os, const std::string& session, std::uint64_t first_id,
                      std::size_t accepted) {
  obs::JsonWriter json(os);
  json.begin_object()
      .field("schema", obs::kSubmitAckSchema)
      .field("session", session)
      .field("first_id", first_id)
      .field("accepted", static_cast<std::uint64_t>(accepted))
      .end_object();
  os << '\n';
}

void write_poll_response(std::ostream& os, const std::string& session,
                         const std::vector<InstanceResult>& items, std::uint64_t cursor,
                         std::size_t pending, bool draining) {
  obs::JsonWriter json(os);
  json.begin_object()
      .field("schema", obs::kPollSchema)
      .field("session", session)
      .field("cursor", cursor)
      .field("pending", static_cast<std::uint64_t>(pending))
      .field("draining", draining);
  json.key("items").begin_array();
  for (const InstanceResult& item : items) {
    json.begin_object()
        .field("schema", obs::kVerdictSchema)
        .field("id", item.id)
        .field("session", item.session);
    write_verdict_fields(json, item.scenario, item.status, item.verdict);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << '\n';
}

void write_verdict_document(std::ostream& os, const exp::ReproScenario& scenario,
                            const exp::ReproVerdict& verdict) {
  obs::JsonWriter json(os);
  json.begin_object().field("schema", obs::kVerdictSchema);
  write_verdict_fields(json, scenario, InstanceStatus::kDone, verdict);
  json.end_object();
  os << '\n';
}

void write_error(std::ostream& os, std::string_view message, std::string_view code) {
  obs::JsonWriter json(os);
  json.begin_object().field("schema", obs::kErrorSchema).field("error", message);
  if (!code.empty()) json.field("code", code);
  json.end_object();
  os << '\n';
}

}  // namespace byzrename::svc
