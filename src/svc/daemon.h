#ifndef BYZRENAME_SVC_DAEMON_H
#define BYZRENAME_SVC_DAEMON_H

#include <cstddef>
#include <cstdint>

#include "obs/http/exposition.h"
#include "obs/http/http_server.h"
#include "svc/scheduler.h"

namespace byzrename::svc {

struct DaemonOptions {
  /// Loopback port; 0 picks an ephemeral one (readable via port()).
  std::uint16_t port = 0;
  SchedulerOptions scheduler;
  /// Body cap for POST /v1/submit; a full max_batch of fault-planned
  /// scenarios fits comfortably. POST /v1/session keeps the 1 MiB
  /// route default.
  std::size_t max_submit_body_bytes = 8u << 20;
};

/// The byzrenamed HTTP surface: wires the service API routes
/// (POST /v1/session, POST /v1/submit, GET /v1/poll), the shared
/// observability endpoints (/metrics with per-tenant families, /healthz,
/// /buildinfo), and the scheduler together. Owns all of them; the tool
/// in tools/byzrenamed.cpp is argument parsing, signal handling, and one
/// Daemon.
///
/// Status mapping, uniformly with byzrename.error/1 bodies:
///   400  malformed JSON / schema / query string
///   404  unknown session
///   429  admission rejection (Retry-After header when retrying helps)
///   503  draining (shutdown began; no new sessions or submits)
class Daemon {
 public:
  explicit Daemon(DaemonOptions options = {});

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Mounts every route and starts the HTTP server. Call once.
  void start();

  /// Drains the scheduler per @p mode, then stops the HTTP server.
  void stop(Scheduler::DrainMode mode);

  [[nodiscard]] std::uint16_t port() const noexcept { return server_.port(); }
  [[nodiscard]] Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] obs::HttpServer& server() noexcept { return server_; }

 private:
  DaemonOptions options_;
  Scheduler scheduler_;
  obs::ExpositionHub hub_;
  obs::HttpServer server_;
};

}  // namespace byzrename::svc

#endif  // BYZRENAME_SVC_DAEMON_H
