#include "svc/daemon.h"

#include <charconv>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/http/buildinfo.h"
#include "svc/api.h"

namespace byzrename::svc {

namespace {

constexpr int kMaxPollWaitMs = 30000;

obs::HttpResponse json_response(int status, std::string body) {
  return {status, "application/json", std::move(body), {}};
}

obs::HttpResponse error_response(int status, std::string_view message,
                                 std::string_view code = {}) {
  std::ostringstream body;
  write_error(body, message, code);
  return json_response(status, body.str());
}

std::uint64_t parse_uint_param(const std::string& value, const char* name) {
  std::uint64_t parsed = 0;
  const auto [end, ec] = std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc{} || end != value.data() + value.size()) {
    throw std::invalid_argument(std::string("query parameter '") + name +
                                "' is not an unsigned integer");
  }
  return parsed;
}

}  // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(options), scheduler_(options.scheduler) {}

void Daemon::start() {
  hub_.add_writer([this](std::ostream& os) { scheduler_.write_metrics(os); });
  hub_.add_writer([](std::ostream& os) { obs::write_process_metrics(os); });
  obs::mount_prometheus(server_, hub_);
  obs::mount_healthz(server_);
  obs::mount_buildinfo(server_);

  server_.handle_post("/v1/session", [this](const obs::HttpRequest& request) {
    std::string tenant;
    try {
      tenant = parse_session_request(request.body);
    } catch (const std::invalid_argument& error) {
      return error_response(400, error.what());
    }
    const bool created = scheduler_.open_session(tenant);
    if (!created && scheduler_.draining()) {
      return error_response(503, "service is draining");
    }
    // Created or already open: both are success (clients retry).
    std::ostringstream body;
    write_session_ack(body, tenant);
    return json_response(200, body.str());
  });

  server_.handle_post(
      "/v1/submit",
      [this](const obs::HttpRequest& request) {
        SubmitRequest submit;
        try {
          submit = parse_submit_request(request.body);
        } catch (const std::invalid_argument& error) {
          return error_response(400, error.what());
        }
        const Scheduler::SubmitOutcome outcome =
            scheduler_.submit(submit.session, std::move(submit.instances));
        if (outcome.draining) return error_response(503, outcome.reason);
        if (outcome.unknown_session) return error_response(404, outcome.reason);
        if (!outcome.admitted) {
          obs::HttpResponse response = error_response(429, outcome.reason);
          if (outcome.retry_after_seconds > 0) {
            response.extra_headers.emplace_back("Retry-After",
                                                std::to_string(outcome.retry_after_seconds));
          }
          return response;
        }
        std::ostringstream body;
        write_submit_ack(body, submit.session, outcome.first_id, outcome.accepted);
        return json_response(202, body.str());
      },
      obs::HttpServer::PostOptions{options_.max_submit_body_bytes, "application/json"});

  server_.handle("/v1/poll", [this](const obs::HttpRequest& request) {
    std::string session;
    std::uint64_t cursor = 0;
    std::size_t max_items = 0;
    int wait_ms = 0;
    try {
      const auto params = parse_query(request.query);
      const auto session_it = params.find("session");
      if (session_it == params.end()) {
        throw std::invalid_argument("missing query parameter 'session'");
      }
      session = session_it->second;
      if (const auto it = params.find("cursor"); it != params.end()) {
        cursor = parse_uint_param(it->second, "cursor");
      }
      if (const auto it = params.find("max"); it != params.end()) {
        max_items = static_cast<std::size_t>(parse_uint_param(it->second, "max"));
      }
      if (const auto it = params.find("wait_ms"); it != params.end()) {
        wait_ms = static_cast<int>(
            std::min<std::uint64_t>(parse_uint_param(it->second, "wait_ms"), kMaxPollWaitMs));
      }
    } catch (const std::invalid_argument& error) {
      return error_response(400, error.what());
    }
    const Scheduler::PollResult poll = scheduler_.poll(session, cursor, max_items, wait_ms);
    if (poll.unknown_session) {
      return error_response(404, "unknown session '" + session + "'");
    }
    if (poll.evicted) {
      // Distinct code: a plain 404 means "no such session"; this one
      // means "the session is fine but that history is gone — resume
      // from oldest_cursor".
      return error_response(404,
                            "cursor " + std::to_string(cursor) +
                                " evicted by the retention window; oldest retained cursor is " +
                                std::to_string(poll.oldest_cursor),
                            "cursor-evicted");
    }
    std::ostringstream body;
    write_poll_response(body, session, poll.items, poll.cursor, poll.pending, poll.draining);
    return json_response(200, body.str());
  });

  server_.start(options_.port);
}

void Daemon::stop(Scheduler::DrainMode mode) {
  scheduler_.shutdown(mode);
  server_.stop();
}

}  // namespace byzrename::svc
