#ifndef BYZRENAME_SVC_SCHEDULER_H
#define BYZRENAME_SVC_SCHEDULER_H

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exp/executor.h"
#include "exp/repro.h"
#include "obs/metrics_registry.h"
#include "svc/admission.h"
#include "svc/api.h"

namespace byzrename::svc {

struct SchedulerOptions {
  /// Executor worker count; < 1 selects hardware concurrency.
  int threads = 0;
  AdmissionLimits admission;
  /// Max instances pulled from one session into one dispatch batch
  /// before moving to the next session — the fair-queueing quantum.
  std::size_t fair_quantum = 16;
  /// Completion hook, invoked with the scheduler mutex HELD as each
  /// instance finishes (latency in seconds, enqueue to completion).
  /// Must not call back into the scheduler. Benchmark instrumentation;
  /// leave empty in production.
  std::function<void(const InstanceResult&, double)> on_complete;
  /// Per-session verdict retention window: once a session holds more
  /// than this many completed results, the oldest are evicted (ROADMAP
  /// item 3 — the last unbounded store). A poll whose cursor points
  /// below the window reports PollResult::evicted; the daemon maps that
  /// to 404 `cursor-evicted`. 0 disables eviction (pre-retention
  /// behavior, for tests that replay full histories).
  std::size_t retention_cap = 65536;
};

/// Multiplexes many sessions' renaming instances over one work-stealing
/// executor. The contract that makes the whole service testable: a
/// verdict is a pure function of its scenario (core::run_scenario's
/// re-entrancy guarantee), so WHEN an instance runs — which batch,
/// which worker, what thread count — can never change WHAT it returns,
/// only when it becomes pollable.
///
/// Concurrency model: one internal dispatcher thread gathers fair
/// round-robin batches (up to fair_quantum per session per batch, in
/// session-name order) and blocks in Executor::run; worker threads
/// record each completion under the scheduler mutex as it happens, so
/// poll() streams results out of a batch still in flight. Every public
/// member is thread-safe.
///
/// Shutdown: shutdown(kCancelQueued) marks still-queued instances
/// cancelled (pollable, status "cancelled", no verdict — the PR 6
/// cooperative-cancellation shape) and completes in-flight ones;
/// shutdown(kWaitAll) runs everything already admitted. Both stop
/// admission first (submits report `draining`) and block until the
/// dispatcher exits. The destructor is shutdown(kCancelQueued).
class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  enum class DrainMode {
    kWaitAll,      ///< run every admitted instance, then stop
    kCancelQueued, ///< cancel queued instances; in-flight complete
  };

  struct SubmitOutcome {
    bool admitted = false;
    bool unknown_session = false;
    bool draining = false;
    std::uint64_t first_id = 0;   ///< ids are first_id .. first_id+accepted-1
    std::size_t accepted = 0;
    std::string reason;           ///< admission reason when rejected
    int retry_after_seconds = 0;
  };

  struct PollResult {
    bool unknown_session = false;
    /// The requested cursor points below the retention window: the
    /// results there have been evicted and cannot be replayed. items is
    /// empty; oldest_cursor is where retained history begins.
    bool evicted = false;
    std::vector<InstanceResult> items;  ///< completion order
    std::uint64_t cursor = 0;           ///< pass back to continue
    std::uint64_t oldest_cursor = 0;    ///< first still-retained cursor
    std::size_t pending = 0;            ///< submitted, not yet pollable
    bool draining = false;
  };

  /// Idempotent: returns true when the session was created, false when
  /// it already existed (reopening is not an error — clients retry).
  /// Refused (returns false with draining()) once shutdown began.
  bool open_session(const std::string& session);

  /// Admission-checked enqueue. The batch is admitted or rejected
  /// whole.
  SubmitOutcome submit(const std::string& session, std::vector<exp::ReproScenario> instances);

  /// Results for @p session from @p cursor on, at most @p max_items.
  /// With @p wait_ms > 0 blocks up to that long for the first new
  /// result (long-poll); returns immediately once anything is
  /// available.
  PollResult poll(const std::string& session, std::uint64_t cursor, std::size_t max_items,
                  int wait_ms = 0);

  /// Blocks until no instance is queued or running. Test/bench helper.
  void wait_idle();

  /// Stops admission, drains per @p mode, joins the dispatcher.
  /// Idempotent; the first caller's mode wins.
  void shutdown(DrainMode mode);

  [[nodiscard]] bool draining() const;

  /// Prometheus families (service gauges, per-tenant counters, the
  /// completion-latency histogram) under the scheduler mutex — mount as
  /// an ExpositionHub writer.
  void write_metrics(std::ostream& os) const;

  [[nodiscard]] int threads() const noexcept { return executor_.threads(); }

 private:
  struct Queued {
    std::uint64_t id = 0;
    exp::ReproScenario scenario;
    std::chrono::steady_clock::time_point enqueued;
  };

  struct Session {
    std::deque<Queued> queue;
    /// Completed results still retained, in completion order. Cursor c
    /// addresses done[c - evicted]; the front is dropped once the
    /// retention cap is exceeded.
    std::deque<InstanceResult> done;
    /// Results evicted off the front of done; done's base cursor.
    std::uint64_t evicted = 0;
    std::uint64_t submitted_total = 0;
    /// Results ever completed (retained + evicted).
    [[nodiscard]] std::uint64_t completed_total() const noexcept {
      return evicted + done.size();
    }
    /// Per-tenant counter handles in the shared registry.
    obs::MetricsRegistry::Handle submitted = 0;
    obs::MetricsRegistry::Handle completed = 0;
    obs::MetricsRegistry::Handle ok = 0;
    obs::MetricsRegistry::Handle violations = 0;
    obs::MetricsRegistry::Handle cancelled = 0;
    obs::MetricsRegistry::Handle rejected = 0;
    obs::MetricsRegistry::Handle evicted_metric = 0;
    /// Thread CPU time spent inside this tenant's verdict evaluations
    /// (obs/prof thread_cpu_ns deltas around evaluate_scenario), in
    /// microseconds — the per-tenant cost attribution an operator bills
    /// or throttles on.
    obs::MetricsRegistry::Handle cpu_micros = 0;
  };

  void dispatch_loop();
  void record_result_locked(Session& session, InstanceResult result,
                            std::chrono::steady_clock::time_point enqueued);
  void update_gauges_locked();
  [[nodiscard]] double drain_rate_locked() const;

  SchedulerOptions options_;
  AdmissionController admission_;
  exp::Executor executor_;

  mutable std::mutex mutex_;
  std::condition_variable dispatch_cv_;        ///< wakes the dispatcher
  mutable std::condition_variable results_cv_; ///< wakes poll/wait_idle
  std::map<std::string, Session, std::less<>> sessions_;
  std::size_t total_queued_ = 0;
  std::size_t total_running_ = 0;
  std::uint64_t next_id_ = 1;
  bool stopping_ = false;
  DrainMode drain_mode_ = DrainMode::kCancelQueued;

  /// EWMA completions/second (tau 5 s), feeding Retry-After.
  double ewma_rate_ = 0.0;
  std::chrono::steady_clock::time_point last_completion_{};
  bool has_completion_ = false;

  obs::MetricsRegistry registry_;
  obs::MetricsRegistry::Handle sessions_gauge_ = 0;
  obs::MetricsRegistry::Handle queued_gauge_ = 0;
  obs::MetricsRegistry::Handle running_gauge_ = 0;
  obs::MetricsRegistry::Handle draining_gauge_ = 0;
  obs::MetricsRegistry::Handle latency_hist_ = 0;

  std::thread dispatcher_;
};

}  // namespace byzrename::svc

#endif  // BYZRENAME_SVC_SCHEDULER_H
