#include "trace/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace byzrename::trace {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_bool(bool value) { return value ? "yes" : "NO"; }

std::string fmt_double(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

}  // namespace byzrename::trace
