#ifndef BYZRENAME_TRACE_TABLE_H
#define BYZRENAME_TRACE_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace byzrename::trace {

/// Minimal fixed-width text table used by the bench harness to print the
/// reproduced tables in a paper-like layout.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders with column auto-sizing and a header rule.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Convenience formatters for table cells.
[[nodiscard]] std::string fmt_bool(bool value);
[[nodiscard]] std::string fmt_double(double value, int precision = 3);

}  // namespace byzrename::trace

#endif  // BYZRENAME_TRACE_TABLE_H
