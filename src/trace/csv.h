#ifndef BYZRENAME_TRACE_CSV_H
#define BYZRENAME_TRACE_CSV_H

#include <iosfwd>
#include <string>
#include <vector>

namespace byzrename::trace {

/// Streaming CSV writer for bench series that downstream plotting
/// consumes (figures F1-F3). Quotes cells only when needed.
class CsvWriter {
 public:
  CsvWriter(std::ostream& os, std::vector<std::string> headers);

  void write_row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
  std::size_t columns_;
};

}  // namespace byzrename::trace

#endif  // BYZRENAME_TRACE_CSV_H
