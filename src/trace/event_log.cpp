#include "trace/event_log.h"

#include <ostream>

namespace byzrename::trace {

void EventLog::render(std::ostream& os, const Filter& filter) const {
  sim::Round current_round = -1;
  for (const Event& event : events_) {
    if (filter && !filter(event)) continue;
    if (event.round != current_round) {
      current_round = event.round;
      os << "--- round " << current_round << " ---\n";
    }
    if (event.kind == Event::Kind::kSend) {
      os << "  p" << event.actor << (event.byzantine_actor ? "*" : "") << " -> ";
      if (event.peer.has_value()) {
        os << "p" << *event.peer;
      } else {
        os << "all";
      }
    } else if (event.kind == Event::Kind::kDeliver) {
      os << "  p" << event.actor << (event.byzantine_actor ? "*" : "") << " <- link "
         << event.link;
    } else if (event.kind == Event::Kind::kFault) {
      os << "  p" << event.actor << (event.byzantine_actor ? "*" : "") << " !fault";
      if (event.link >= 0) os << " link " << event.link;
    } else {
      os << "  p" << event.actor << (event.byzantine_actor ? "*" : "") << " decides";
    }
    os << " : " << event.payload << '\n';
  }
}

EventLog::Filter EventLog::only_round(sim::Round round) {
  return [round](const Event& event) { return event.round == round; };
}

EventLog::Filter EventLog::only_actor(sim::ProcessIndex actor) {
  return [actor](const Event& event) { return event.actor == actor; };
}

EventLog::Filter EventLog::only_byzantine() {
  return [](const Event& event) { return event.byzantine_actor; };
}

}  // namespace byzrename::trace
