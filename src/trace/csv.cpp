#include "trace/csv.h"

#include <ostream>
#include <stdexcept>

namespace byzrename::trace {

namespace {

void write_cell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (const char c : cell) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

void write_line(std::ostream& os, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) os << ',';
    write_cell(os, cells[i]);
  }
  os << '\n';
}

}  // namespace

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> headers)
    : os_(os), columns_(headers.size()) {
  write_line(os_, headers);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) throw std::invalid_argument("CsvWriter: column count mismatch");
  write_line(os_, cells);
}

}  // namespace byzrename::trace
