#ifndef BYZRENAME_TRACE_EVENT_LOG_H
#define BYZRENAME_TRACE_EVENT_LOG_H

#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "sim/types.h"

namespace byzrename::trace {

/// One observable network event. Send events carry the (physical)
/// destination the simulator resolved; deliver events carry the link
/// label the receiver saw — reflecting exactly the asymmetry of the
/// model (the omniscient log knows who sent what; the receiver only
/// knows the link). Decide events mark the round in which a correct
/// process first reported done(), with its decided name in the payload.
/// Fault events record the injector's model violations (sim/fault.h):
/// the payload names the decision ("drop", "dup x2", "delay +3",
/// "crash"), actor is the affected endpoint, and link the receiver-side
/// link label when the fault hit a delivery (-1 for crashes).
struct Event {
  enum class Kind { kSend, kDeliver, kDecide, kFault };
  sim::Round round = 0;
  Kind kind = Kind::kSend;
  sim::ProcessIndex actor = 0;  ///< sender (kSend) or receiver (kDeliver/kFault)
  std::optional<sim::ProcessIndex> peer;  ///< destination (kSend only; nullopt = broadcast)
  sim::LinkIndex link = -1;               ///< arrival link (kDeliver only)
  bool byzantine_actor = false;
  std::string payload;  ///< human-readable payload summary
};

/// In-memory structured trace of a run. Attach to a Network before
/// running; O(N^2) events per round, so meant for small debugging and
/// teaching scenarios, not sweeps.
class EventLog {
 public:
  void record(Event event) { events_.push_back(std::move(event)); }

  [[nodiscard]] const std::vector<Event>& events() const noexcept { return events_; }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  void clear() noexcept { events_.clear(); }

  using Filter = std::function<bool(const Event&)>;

  /// Renders events matching @p filter (all if absent), grouped by round.
  void render(std::ostream& os, const Filter& filter = {}) const;

  /// Convenience filters.
  [[nodiscard]] static Filter only_round(sim::Round round);
  [[nodiscard]] static Filter only_actor(sim::ProcessIndex actor);
  [[nodiscard]] static Filter only_byzantine();

 private:
  std::vector<Event> events_;
};

}  // namespace byzrename::trace

#endif  // BYZRENAME_TRACE_EVENT_LOG_H
