#ifndef BYZRENAME_SIM_TYPES_H
#define BYZRENAME_SIM_TYPES_H

#include <cstdint>

namespace byzrename::sim {

/// Original process identifier drawn from the large namespace [1..Nmax].
/// The paper allows Nmax >> N; 64 bits covers any realistic namespace.
using Id = std::int64_t;

/// New name produced by a renaming algorithm (target namespace <= N^2).
using Name = std::int64_t;

/// Physical index of a process inside the simulator, 0..N-1. Only the
/// simulator and (by the full-information adversary assumption) Byzantine
/// strategies ever see these; correct algorithms must not.
using ProcessIndex = int;

/// Label of an incoming link at a receiver, 0..N-1. Link labels are an
/// arbitrary per-receiver permutation of the peers (plus a self-loop), so
/// a label carries no information about the sender's identity — exactly
/// the anonymity the model in Section II of the paper prescribes.
using LinkIndex = int;

/// Synchronous round number, starting at 1 to match the paper's "Step r".
using Round = int;

/// Global system parameters known a priori to every process.
struct SystemParams {
  int n = 0;  ///< number of processes
  int t = 0;  ///< upper bound on the number of Byzantine faults

  friend bool operator==(const SystemParams&, const SystemParams&) = default;
};

}  // namespace byzrename::sim

#endif  // BYZRENAME_SIM_TYPES_H
