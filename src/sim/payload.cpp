#include "sim/payload.h"

#include <sstream>

namespace byzrename::sim {

namespace {

constexpr std::size_t kIdBits = 64;      // ids drawn from [1..Nmax], Nmax <= 2^63
constexpr std::size_t kTagBits = 8;      // message-type discriminator
constexpr std::size_t kLengthBits = 32;  // vector length prefix

std::size_t rational_bits(const numeric::Rational& value) noexcept {
  return value.encoded_bits();
}

numeric::Rational entry_rational(const FixedRanksMsg& msg, std::size_t index,
                                 const numeric::BigInt& scale) {
  return numeric::fixed_to_rational(msg.nums.data() + index * msg.width, msg.width, scale);
}

}  // namespace

RanksMsg to_ranks_msg(const FixedRanksMsg& msg) {
  const numeric::BigInt scale =
      numeric::BigInt::from_words64(msg.scale.data(), numeric::kFixedRankLimbs, false);
  RanksMsg out;
  out.entries.reserve(msg.ids.size());
  for (std::size_t i = 0; i < msg.ids.size(); ++i) {
    out.entries.push_back({msg.ids[i], entry_rational(msg, i, scale)});
  }
  return out;
}

std::size_t wire_bits(const Payload& payload) noexcept {
  return kTagBits + std::visit(
                        [](const auto& msg) -> std::size_t {
                          using T = std::decay_t<decltype(msg)>;
                          if constexpr (std::is_same_v<T, IdMsg> || std::is_same_v<T, EchoMsg> ||
                                        std::is_same_v<T, ReadyMsg>) {
                            return kIdBits;
                          } else if constexpr (std::is_same_v<T, RanksMsg>) {
                            std::size_t bits = kLengthBits;
                            for (const RankEntry& entry : msg.entries) {
                              bits += kIdBits + rational_bits(entry.rank);
                            }
                            return bits;
                          } else if constexpr (std::is_same_v<T, MultiEchoMsg>) {
                            return kLengthBits + msg.ids.size() * kIdBits;
                          } else if constexpr (std::is_same_v<T, AAValueMsg>) {
                            return rational_bits(msg.value);
                          } else if constexpr (std::is_same_v<T, WordMsg>) {
                            return kIdBits + kLengthBits + msg.words.size() * kIdBits;
                          } else if constexpr (std::is_same_v<T, WrappedCastMsg>) {
                            return kIdBits + kLengthBits + msg.blob.size() * 8;
                          } else if constexpr (std::is_same_v<T, WrappedEchoMsg>) {
                            return 2 * kIdBits + kLengthBits + msg.blob.size() * 8;
                          } else {
                            static_assert(std::is_same_v<T, FixedRanksMsg>);
                            // Mirror of the RanksMsg branch over the
                            // reduced-rational equivalents.
                            const numeric::BigInt scale = numeric::BigInt::from_words64(
                                msg.scale.data(), numeric::kFixedRankLimbs, false);
                            std::size_t bits = kLengthBits;
                            for (std::size_t i = 0; i < msg.ids.size(); ++i) {
                              bits += kIdBits + rational_bits(entry_rational(msg, i, scale));
                            }
                            return bits;
                          }
                        },
                        payload);
}

std::string describe(const Payload& payload) {
  std::ostringstream out;
  std::visit(
      [&out](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, IdMsg>) {
          out << "Id(" << msg.id << ")";
        } else if constexpr (std::is_same_v<T, EchoMsg>) {
          out << "Echo(" << msg.id << ")";
        } else if constexpr (std::is_same_v<T, ReadyMsg>) {
          out << "Ready(" << msg.id << ")";
        } else if constexpr (std::is_same_v<T, RanksMsg>) {
          out << "Ranks[" << msg.entries.size() << "]{";
          for (std::size_t i = 0; i < msg.entries.size(); ++i) {
            if (i != 0) out << ", ";
            out << msg.entries[i].id << ":" << msg.entries[i].rank;
          }
          out << "}";
        } else if constexpr (std::is_same_v<T, MultiEchoMsg>) {
          out << "MultiEcho[" << msg.ids.size() << "]{";
          for (std::size_t i = 0; i < msg.ids.size(); ++i) {
            if (i != 0) out << ", ";
            out << msg.ids[i];
          }
          out << "}";
        } else if constexpr (std::is_same_v<T, AAValueMsg>) {
          out << "AAValue(" << msg.value << ")";
        } else if constexpr (std::is_same_v<T, WordMsg>) {
          out << "Word(tag=" << msg.tag << ", words=" << msg.words.size() << ")";
        } else if constexpr (std::is_same_v<T, WrappedCastMsg>) {
          out << "Cast(r=" << msg.sim_round << ", " << msg.blob.size() << "B)";
        } else if constexpr (std::is_same_v<T, WrappedEchoMsg>) {
          out << "CastEcho(p" << msg.sender << ", r=" << msg.sim_round << ", " << msg.blob.size()
              << "B)";
        } else {
          static_assert(std::is_same_v<T, FixedRanksMsg>);
          // Render exactly like the equivalent RanksMsg so traces are
          // identical across rank kernels.
          const numeric::BigInt scale = numeric::BigInt::from_words64(
              msg.scale.data(), numeric::kFixedRankLimbs, false);
          out << "Ranks[" << msg.ids.size() << "]{";
          for (std::size_t i = 0; i < msg.ids.size(); ++i) {
            if (i != 0) out << ", ";
            out << msg.ids[i] << ":" << entry_rational(msg, i, scale);
          }
          out << "}";
        }
      },
      payload);
  return out.str();
}

}  // namespace byzrename::sim
