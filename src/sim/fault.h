#ifndef BYZRENAME_SIM_FAULT_H
#define BYZRENAME_SIM_FAULT_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.h"

namespace byzrename::sim {

/// The paper's model (Section II) assumes reliable lockstep links and at
/// most t faulty processes. The fault injector deliberately violates that
/// model at the link layer so experiments can measure *which* guarantee
/// degrades first and how gracefully (ISSUE 3; cf. Okun's channel-level
/// impersonation model, arXiv:1007.1086). Every decision is a pure
/// function of (seed, round, sender, receiver, rule), so a FaultPlan plus
/// a seed names the exact same perturbed execution on every machine and
/// composes deterministically with the Byzantine adversary strategies.

/// Probabilistic per-delivery fault applied while a round window is open.
enum class LinkFaultKind {
  kDrop,       ///< the delivery silently vanishes
  kDuplicate,  ///< the delivery arrives twice in the same round
  kDelay,      ///< the delivery is postponed by delay_rounds rounds
};

struct LinkFaultRule {
  LinkFaultKind kind = LinkFaultKind::kDrop;
  /// Per-(round, sender, receiver) application probability in [0, 1].
  double probability = 0.0;
  /// Active window, inclusive; to_round == 0 leaves the window open.
  Round from_round = 1;
  Round to_round = 0;
  /// kDelay only: rounds the delivery is postponed by (>= 1).
  int delay_rounds = 1;

  friend bool operator==(const LinkFaultRule&, const LinkFaultRule&) = default;
};

/// Crash-recovery: the process neither sends nor receives during
/// [from_round, to_round] and resumes afterwards (to_round == 0 means it
/// never recovers). Applies to any physical index, so crashes compose
/// with Byzantine team members too.
struct CrashEvent {
  ProcessIndex process = 0;
  Round from_round = 1;
  Round to_round = 0;

  friend bool operator==(const CrashEvent&, const CrashEvent&) = default;
};

/// Transient partition: during [from_round, to_round] the island of
/// processes [lo, hi] exchanges no messages with the rest of the system
/// (traffic inside the island, and inside the complement, still flows).
struct PartitionEvent {
  ProcessIndex lo = 0;
  ProcessIndex hi = 0;
  Round from_round = 1;
  Round to_round = 0;

  friend bool operator==(const PartitionEvent&, const PartitionEvent&) = default;
};

/// Impersonation (Okun, arXiv:1007.1086): an external adversary that may
/// insert up to `count` forged-sender messages per correct receiver per
/// round — strictly weaker than Byzantine, because it cannot read or
/// suppress honest traffic, only add lies on existing links. The forged
/// payload comes from a named forgery strategy (adversary/strategies/
/// forgery.h); the spoofed sender is hash-derived, so the forged
/// delivery arrives on the exact link a real message from that sender
/// would use and is indistinguishable at the receiver.
struct ForgeRule {
  /// Max forged messages injected per correct receiver per round (k of
  /// Okun's model). 0 is a valid no-op rule.
  int count = 1;
  /// Per-slot firing probability in [0, 1]; 1 fires every slot.
  double probability = 1.0;
  /// Forgery-strategy name; resolved against the forgery registry by the
  /// harness. "ghost" is the default phantom-process strategy.
  std::string strategy = "ghost";
  /// Active window, inclusive; to_round == 0 leaves the window open.
  Round from_round = 1;
  Round to_round = 0;

  friend bool operator==(const ForgeRule&, const ForgeRule&) = default;
};

/// What a restarted process remembers about its own round counter
/// (Lenzen–Rybicki, arXiv:1503.06702: transient faults corrupt state,
/// including clocks).
enum class RestartState {
  kReset,     ///< clean reboot: the local round counter restarts at 1
  kScramble,  ///< corrupted counter: resumes at a hash-derived wrong round
};

/// Transient restart: at the START of `round` the process is
/// re-initialized mid-protocol — fresh behavior state, cleared inbox,
/// in-flight (delayed) deliveries to it lost, decision forgotten. Only
/// correct processes restart (a Byzantine process gains nothing from
/// losing state). The checker reports whether restarted processes
/// re-joined and decided correctly (CheckReport::recovered).
struct RestartEvent {
  ProcessIndex process = 0;
  Round round = 1;
  RestartState state = RestartState::kReset;

  friend bool operator==(const RestartEvent&, const RestartEvent&) = default;
};

/// Declarative model-violation plan. Compact spec grammar (see
/// docs/FAULTS.md), events joined by '+':
///
///   drop:P[@r1..r2]      drop each delivery with probability P
///   dup:P[@r1..r2]       duplicate each delivery with probability P
///   delay:PxK[@r1..r2]   postpone each delivery by K rounds with prob. P
///   crash:PID@r1[..r2]   process PID down for rounds r1..r2 (or forever)
///   part:LO-HI@r1..r2    island [LO..HI] partitioned off during r1..r2
///   overshoot:K          K extra Byzantine processes beyond the declared
///                        budget — the f > t model violation
///   forge:K[xP][=STRAT][@r1..r2]
///                        up to K forged-sender messages per correct
///                        receiver per round (impersonation), each slot
///                        firing with probability P (default 1), payload
///                        from forgery strategy STRAT (default "ghost")
///   restart:PID@R[,scramble|reset]
///                        process PID re-initialized at the start of
///                        round R; "scramble" corrupts its round counter
struct FaultPlan {
  std::vector<LinkFaultRule> links;
  std::vector<CrashEvent> crashes;
  std::vector<PartitionEvent> partitions;
  std::vector<ForgeRule> forges;
  std::vector<RestartEvent> restarts;
  /// Extra faulty processes beyond ScenarioConfig::actual_faults; the
  /// harness converts that many more correct processes to Byzantine,
  /// deliberately exceeding t.
  int fault_overshoot = 0;

  [[nodiscard]] bool empty() const noexcept {
    return links.empty() && crashes.empty() && partitions.empty() && forges.empty() &&
           restarts.empty() && fault_overshoot == 0;
  }
  /// Number of declared events; the shrinker's size contribution.
  [[nodiscard]] std::size_t event_count() const noexcept {
    return links.size() + crashes.size() + partitions.size() + forges.size() +
           restarts.size() + static_cast<std::size_t>(fault_overshoot > 0 ? 1 : 0);
  }

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Parses the compact spec grammar above. Throws std::invalid_argument
/// with a human-readable message on malformed input. An empty string is
/// the empty plan.
[[nodiscard]] FaultPlan parse_fault_plan(std::string_view spec);

/// Canonical spec string; parse_fault_plan(to_spec(p)) == p.
[[nodiscard]] std::string to_spec(const FaultPlan& plan);

/// Applies a FaultPlan at the link layer of the lockstep network. All
/// methods are const and decisions are hash-derived, never drawn from
/// sequential RNG state, so fate(round, s, r) is independent of the order
/// deliveries are evaluated in — the property the campaign engine's
/// bit-determinism gate relies on.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t seed)
      : plan_(std::move(plan)), seed_(seed) {}

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// True while @p process is inside a crash window at @p round.
  [[nodiscard]] bool crashed(ProcessIndex process, Round round) const noexcept;

  /// Combined fate of one delivery. Drop dominates; duplication and delay
  /// from multiple matching rules accumulate.
  struct Fate {
    bool drop = false;  ///< partition cut, crashed receiver, or drop rule
    int copies = 1;     ///< 1 + accepted duplication rules
    int delay = 0;      ///< summed delay rounds of accepted delay rules
  };
  [[nodiscard]] Fate fate(Round round, ProcessIndex sender, ProcessIndex receiver) const;

  /// One forged-sender message the impersonation adversary injects.
  struct ForgedMessage {
    ProcessIndex spoofed_sender = 0;  ///< hash-derived, in [0, n)
    std::size_t rule = 0;             ///< index into plan().forges
    std::uint64_t entropy = 0;        ///< per-slot hash for the strategy
  };
  /// Appends the forged deliveries aimed at @p receiver in @p round, in
  /// deterministic (rule, slot) order. @p n bounds the spoofed-sender
  /// index. Pure per-(round, receiver): independent of evaluation order,
  /// like fate().
  void forged(Round round, ProcessIndex receiver, int n,
              std::vector<ForgedMessage>& out) const;

  /// Round-counter skew of a kScramble restart, in [0, event.round - 1]:
  /// the restarted process resumes believing it is `skew` rounds further
  /// along than a clean reset would be. Pure hash of the event
  /// coordinates; @p rule is the event's index in plan().restarts.
  [[nodiscard]] int restart_skew(std::size_t rule, const RestartEvent& event) const noexcept;

 private:
  FaultPlan plan_;
  std::uint64_t seed_;
};

}  // namespace byzrename::sim

#endif  // BYZRENAME_SIM_FAULT_H
