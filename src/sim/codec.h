#ifndef BYZRENAME_SIM_CODEC_H
#define BYZRENAME_SIM_CODEC_H

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/payload.h"

namespace byzrename::sim {

/// Binary wire codec for payloads.
///
/// The paper's complexity sections (IV-D, VI-B) bound the *bits* each
/// message costs; the simulator charges every delivery the size this
/// codec actually produces, so those bounds are checked against a real
/// encoding rather than an estimate. Format (little-endian throughout):
///
///   payload   := kind:u8 body
///   varint    := LEB128 (7 bits per byte, high bit = continuation)
///   svarint   := zigzag-mapped varint
///   id        := svarint
///   rational  := sign+length header (varint: len<<1 | negative),
///                numerator magnitude bytes, then denominator varint
///                length + magnitude bytes (denominator always positive)
///   vectors   := varint count, then elements
///
/// decode() is total: any malformed, truncated, or trailing-garbage
/// input yields nullopt — Byzantine senders control these bytes.
[[nodiscard]] std::vector<std::uint8_t> encode(const Payload& payload);

[[nodiscard]] std::optional<Payload> decode(const std::vector<std::uint8_t>& bytes);

/// Exact size of the encoded payload in bits (8 * encode().size()).
[[nodiscard]] std::size_t encoded_bits(const Payload& payload);

}  // namespace byzrename::sim

#endif  // BYZRENAME_SIM_CODEC_H
