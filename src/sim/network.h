#ifndef BYZRENAME_SIM_NETWORK_H
#define BYZRENAME_SIM_NETWORK_H

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/fault.h"
#include "sim/metrics.h"
#include "sim/payload.h"
#include "sim/process.h"
#include "sim/rng.h"
#include "sim/types.h"

namespace byzrename::trace {
class EventLog;
}  // namespace byzrename::trace

namespace byzrename::sim {

/// Supplies payloads for the impersonation adversary's forged-sender
/// messages (ForgeRule in sim/fault.h). Lives at the network layer so
/// fault.h stays payload-free; the adversary registry implements it
/// (adversary/strategies/forgery.h). Implementations must be pure in
/// (round, spoofed_sender, receiver, strategy, entropy) — no internal
/// state — to preserve the campaign engine's order-independence.
class ForgerySource {
 public:
  virtual ~ForgerySource() = default;
  /// Payload of one forged delivery, or an empty ref to decline the slot.
  [[nodiscard]] virtual PayloadRef forge(Round round, ProcessIndex spoofed_sender,
                                         ProcessIndex receiver, const std::string& strategy,
                                         std::uint64_t entropy) = 0;
};

/// Fully connected synchronous network of N processes.
///
/// Realizes the model of Section II of the paper:
///  - computation proceeds in lockstep rounds: all round-r messages are
///    delivered before any process takes a round-(r+1) action;
///  - each pair of processes is connected by a reliable link, and every
///    process has a self-loop;
///  - a receiver learns only the (stable) label of the link a message
///    arrived on, never the sender's identity. Link labels are scrambled
///    with a per-receiver random permutation so no algorithm can cheat by
///    decoding sender indices out of labels;
///  - Byzantine processes may send arbitrary, per-destination payloads.
class Network {
 public:
  /// @param behaviors one behavior per process; index is the physical
  ///        process index (hidden from correct behaviors).
  /// @param byzantine byzantine[i] marks process i faulty: it gains
  ///        targeted sends and is excluded from termination/decisions.
  /// @param rng source for the link-label scrambling.
  /// @param scramble_links when true (default, the paper's model) each
  ///        receiver's link labels are a random permutation of the peers;
  ///        when false link label == sender index, modelling the stronger
  ///        sender-authenticated setting that the reliable-broadcast and
  ///        consensus substrates presuppose (see DESIGN.md).
  Network(std::vector<std::unique_ptr<ProcessBehavior>> behaviors, std::vector<bool> byzantine,
          Rng rng, bool scramble_links = true);

  /// Executes one synchronous round (send phase then receive phase).
  void run_round(Round round);

  [[nodiscard]] int size() const noexcept { return static_cast<int>(behaviors_.size()); }
  [[nodiscard]] bool is_byzantine(ProcessIndex i) const { return byzantine_.at(static_cast<std::size_t>(i)); }

  /// True once every correct process reports done().
  [[nodiscard]] bool all_correct_done() const;

  [[nodiscard]] ProcessBehavior& behavior(ProcessIndex i) { return *behaviors_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const ProcessBehavior& behavior(ProcessIndex i) const {
    return *behaviors_.at(static_cast<std::size_t>(i));
  }

  /// Link label on which @p receiver hears from @p sender. Exposed for
  /// tests and full-information adversaries; the latter call this inside
  /// per-message loops, so indexing is unchecked (both tables are built
  /// and validated once in the constructor).
  [[nodiscard]] LinkIndex link_of(ProcessIndex receiver, ProcessIndex sender) const {
    return link_of_sender_[static_cast<std::size_t>(receiver)][static_cast<std::size_t>(sender)];
  }

  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }

  /// Round in which process @p i was first observed done(), or 0 if it
  /// never decided. Feeds the checker's violation provenance.
  [[nodiscard]] Round decided_round(ProcessIndex i) const {
    return decided_round_.at(static_cast<std::size_t>(i));
  }

  /// Attaches a structured event trace (sends and deliveries); pass
  /// nullptr to detach. The log sees physical indices — it is the
  /// omniscient observer's view, not any process's.
  void attach_event_log(trace::EventLog* log) noexcept { event_log_ = log; }

  /// Attaches a model-violation injector (sim/fault.h); pass nullptr to
  /// detach. Non-owning — the injector must outlive the run. With none
  /// attached (the default) the network realizes the paper's reliable
  /// lockstep model exactly.
  void attach_fault_injector(const FaultInjector* injector) noexcept {
    fault_injector_ = injector;
  }

  /// Attaches the payload supplier for forge rules; pass nullptr to
  /// detach. Non-owning. Without one, forged slots fall back to a phantom
  /// IdMsg carrying the entropy hash as its id — enough for standalone
  /// sim tests, while the harness always attaches the registry source.
  void attach_forgery_source(ForgerySource* source) noexcept { forgery_source_ = source; }

  /// Factory producing a fresh behavior for process @p i, used by restart
  /// events to re-initialize a correct process mid-protocol. Restart
  /// events targeting correct processes are ignored until one is attached
  /// (the harness always attaches it when the plan has restarts).
  using BehaviorFactory = std::function<std::unique_ptr<ProcessBehavior>(ProcessIndex)>;
  void attach_behavior_factory(BehaviorFactory factory) { behavior_factory_ = std::move(factory); }

  /// True if process @p i was re-initialized by a restart event at any
  /// point in the run. Feeds the checker's recovered verdict.
  [[nodiscard]] bool was_restarted(ProcessIndex i) const {
    return restarted_.at(static_cast<std::size_t>(i));
  }

 private:
  std::vector<std::unique_ptr<ProcessBehavior>> behaviors_;
  std::vector<bool> byzantine_;
  /// Which processes have been observed done(); drives decide events.
  std::vector<bool> done_;
  /// Round of each process's done() transition (0 = not yet).
  std::vector<Round> decided_round_;
  /// link_of_sender_[receiver][sender] -> link label at the receiver.
  std::vector<std::vector<LinkIndex>> link_of_sender_;
  /// Deliveries the injector postponed to one future round. Batches are
  /// few (delay rules are rare), so a flat vector with linear lookup
  /// beats std::map's node allocations on the per-round fast path.
  struct DelayedBatch {
    Round due = 0;
    std::vector<std::pair<std::size_t, Delivery>> entries;
  };
  std::vector<DelayedBatch> delayed_;
  /// Per-receiver inbox buffers, pooled across rounds: cleared (capacity
  /// kept) rather than reallocated, so steady-state rounds do not touch
  /// the heap for delivery storage.
  std::vector<Inbox> inboxes_;
  /// Scratch for the counting sort that orders each inbox by link label.
  std::vector<Delivery> sort_scratch_;
  std::vector<std::uint32_t> link_offsets_;
  Metrics metrics_;
  trace::EventLog* event_log_ = nullptr;
  const FaultInjector* fault_injector_ = nullptr;
  ForgerySource* forgery_source_ = nullptr;
  BehaviorFactory behavior_factory_;
  /// Processes re-initialized by a restart event at some earlier round.
  std::vector<bool> restarted_;
  /// Per-process local-round skew: a restarted process believes the
  /// current round is round + round_offset_[i] (<= the global round).
  /// 0 for never-restarted processes, so their view is unchanged.
  std::vector<int> round_offset_;
  /// Scratch for FaultInjector::forged, pooled across rounds.
  std::vector<FaultInjector::ForgedMessage> forged_scratch_;
};

}  // namespace byzrename::sim

#endif  // BYZRENAME_SIM_NETWORK_H
