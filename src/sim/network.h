#ifndef BYZRENAME_SIM_NETWORK_H
#define BYZRENAME_SIM_NETWORK_H

#include <memory>
#include <utility>
#include <vector>

#include "sim/fault.h"
#include "sim/metrics.h"
#include "sim/payload.h"
#include "sim/process.h"
#include "sim/rng.h"
#include "sim/types.h"

namespace byzrename::trace {
class EventLog;
}  // namespace byzrename::trace

namespace byzrename::sim {

/// Fully connected synchronous network of N processes.
///
/// Realizes the model of Section II of the paper:
///  - computation proceeds in lockstep rounds: all round-r messages are
///    delivered before any process takes a round-(r+1) action;
///  - each pair of processes is connected by a reliable link, and every
///    process has a self-loop;
///  - a receiver learns only the (stable) label of the link a message
///    arrived on, never the sender's identity. Link labels are scrambled
///    with a per-receiver random permutation so no algorithm can cheat by
///    decoding sender indices out of labels;
///  - Byzantine processes may send arbitrary, per-destination payloads.
class Network {
 public:
  /// @param behaviors one behavior per process; index is the physical
  ///        process index (hidden from correct behaviors).
  /// @param byzantine byzantine[i] marks process i faulty: it gains
  ///        targeted sends and is excluded from termination/decisions.
  /// @param rng source for the link-label scrambling.
  /// @param scramble_links when true (default, the paper's model) each
  ///        receiver's link labels are a random permutation of the peers;
  ///        when false link label == sender index, modelling the stronger
  ///        sender-authenticated setting that the reliable-broadcast and
  ///        consensus substrates presuppose (see DESIGN.md).
  Network(std::vector<std::unique_ptr<ProcessBehavior>> behaviors, std::vector<bool> byzantine,
          Rng rng, bool scramble_links = true);

  /// Executes one synchronous round (send phase then receive phase).
  void run_round(Round round);

  [[nodiscard]] int size() const noexcept { return static_cast<int>(behaviors_.size()); }
  [[nodiscard]] bool is_byzantine(ProcessIndex i) const { return byzantine_.at(static_cast<std::size_t>(i)); }

  /// True once every correct process reports done().
  [[nodiscard]] bool all_correct_done() const;

  [[nodiscard]] ProcessBehavior& behavior(ProcessIndex i) { return *behaviors_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const ProcessBehavior& behavior(ProcessIndex i) const {
    return *behaviors_.at(static_cast<std::size_t>(i));
  }

  /// Link label on which @p receiver hears from @p sender. Exposed for
  /// tests and full-information adversaries; the latter call this inside
  /// per-message loops, so indexing is unchecked (both tables are built
  /// and validated once in the constructor).
  [[nodiscard]] LinkIndex link_of(ProcessIndex receiver, ProcessIndex sender) const {
    return link_of_sender_[static_cast<std::size_t>(receiver)][static_cast<std::size_t>(sender)];
  }

  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }

  /// Round in which process @p i was first observed done(), or 0 if it
  /// never decided. Feeds the checker's violation provenance.
  [[nodiscard]] Round decided_round(ProcessIndex i) const {
    return decided_round_.at(static_cast<std::size_t>(i));
  }

  /// Attaches a structured event trace (sends and deliveries); pass
  /// nullptr to detach. The log sees physical indices — it is the
  /// omniscient observer's view, not any process's.
  void attach_event_log(trace::EventLog* log) noexcept { event_log_ = log; }

  /// Attaches a model-violation injector (sim/fault.h); pass nullptr to
  /// detach. Non-owning — the injector must outlive the run. With none
  /// attached (the default) the network realizes the paper's reliable
  /// lockstep model exactly.
  void attach_fault_injector(const FaultInjector* injector) noexcept {
    fault_injector_ = injector;
  }

 private:
  std::vector<std::unique_ptr<ProcessBehavior>> behaviors_;
  std::vector<bool> byzantine_;
  /// Which processes have been observed done(); drives decide events.
  std::vector<bool> done_;
  /// Round of each process's done() transition (0 = not yet).
  std::vector<Round> decided_round_;
  /// link_of_sender_[receiver][sender] -> link label at the receiver.
  std::vector<std::vector<LinkIndex>> link_of_sender_;
  /// Deliveries the injector postponed to one future round. Batches are
  /// few (delay rules are rare), so a flat vector with linear lookup
  /// beats std::map's node allocations on the per-round fast path.
  struct DelayedBatch {
    Round due = 0;
    std::vector<std::pair<std::size_t, Delivery>> entries;
  };
  std::vector<DelayedBatch> delayed_;
  /// Per-receiver inbox buffers, pooled across rounds: cleared (capacity
  /// kept) rather than reallocated, so steady-state rounds do not touch
  /// the heap for delivery storage.
  std::vector<Inbox> inboxes_;
  /// Scratch for the counting sort that orders each inbox by link label.
  std::vector<Delivery> sort_scratch_;
  std::vector<std::uint32_t> link_offsets_;
  Metrics metrics_;
  trace::EventLog* event_log_ = nullptr;
  const FaultInjector* fault_injector_ = nullptr;
};

}  // namespace byzrename::sim

#endif  // BYZRENAME_SIM_NETWORK_H
