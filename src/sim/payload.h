#ifndef BYZRENAME_SIM_PAYLOAD_H
#define BYZRENAME_SIM_PAYLOAD_H

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "numeric/rational.h"
#include "sim/types.h"

namespace byzrename::sim {

/// Step-1 announcement of a process's own id (paper: <ID, my_id>).
struct IdMsg {
  Id id = 0;
  friend bool operator==(const IdMsg&, const IdMsg&) = default;
};

/// Step-2 echo of a previously received id (paper: <Echo, id>).
struct EchoMsg {
  Id id = 0;
  friend bool operator==(const EchoMsg&, const EchoMsg&) = default;
};

/// Step-3/4 readiness announcement (paper: <Ready, id>).
struct ReadyMsg {
  Id id = 0;
  friend bool operator==(const ReadyMsg&, const ReadyMsg&) = default;
};

/// One (id, proposed rank) entry of a voting-phase message.
struct RankEntry {
  Id id = 0;
  numeric::Rational rank;
  friend bool operator==(const RankEntry&, const RankEntry&) = default;
};

/// Voting-phase vote: the sender's entire ranks array (paper: <AA, ranks>).
/// Entries are sorted by id; receivers must tolerate arbitrary content
/// since Byzantine senders craft these freely.
struct RanksMsg {
  std::vector<RankEntry> entries;
  friend bool operator==(const RanksMsg&, const RanksMsg&) = default;
};

/// Step-2 message of the 2-step algorithm (paper: <MultiEcho, ids>).
struct MultiEchoMsg {
  std::vector<Id> ids;
  friend bool operator==(const MultiEchoMsg&, const MultiEchoMsg&) = default;
};

/// Scalar value exchanged by the standalone approximate-agreement substrate.
struct AAValueMsg {
  numeric::Rational value;
  friend bool operator==(const AAValueMsg&, const AAValueMsg&) = default;
};

/// Generic small-integer message used by the consensus substrate
/// (phase-king rounds) and the bit-by-bit renaming baseline.
struct WordMsg {
  std::int64_t tag = 0;
  std::vector<std::int64_t> words;
  friend bool operator==(const WordMsg&, const WordMsg&) = default;
};

/// Crash-to-Byzantine translation (translate/): a simulated protocol
/// message, cast in the first half of a simulated round. The blob is the
/// codec-encoded inner payload.
struct WrappedCastMsg {
  std::int64_t sim_round = 0;
  std::vector<std::uint8_t> blob;
  friend bool operator==(const WrappedCastMsg&, const WrappedCastMsg&) = default;
};

/// Crash-to-Byzantine translation: an echo of a cast, attributed to the
/// original sender (requires the authenticated-link model).
struct WrappedEchoMsg {
  std::int64_t sender = 0;
  std::int64_t sim_round = 0;
  std::vector<std::uint8_t> blob;
  friend bool operator==(const WrappedEchoMsg&, const WrappedEchoMsg&) = default;
};

/// A message payload. Byzantine senders may emit any alternative at any
/// round with any content; correct receivers must ignore what they cannot
/// interpret at the current step.
using Payload = std::variant<IdMsg, EchoMsg, ReadyMsg, RanksMsg, MultiEchoMsg, AAValueMsg, WordMsg,
                             WrappedCastMsg, WrappedEchoMsg>;

/// Size of the payload in bits under a simple fixed-width wire model:
/// ids cost 64 bits (log Nmax), rationals their exact numerator +
/// denominator length, vectors a 32-bit length prefix. The network's
/// metrics use the exact binary codec instead (sim/codec.h); this
/// analytic model exists for quick worst-case estimates in tests.
[[nodiscard]] std::size_t wire_bits(const Payload& payload) noexcept;

/// Human-readable payload summary for traces and test diagnostics.
[[nodiscard]] std::string describe(const Payload& payload);

/// One delivered message: the receiver learns only the link label.
struct Delivery {
  LinkIndex link = 0;
  Payload payload;
};

/// All messages delivered to one process in one round.
using Inbox = std::vector<Delivery>;

}  // namespace byzrename::sim

#endif  // BYZRENAME_SIM_PAYLOAD_H
