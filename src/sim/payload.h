#ifndef BYZRENAME_SIM_PAYLOAD_H
#define BYZRENAME_SIM_PAYLOAD_H

#include <concepts>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "numeric/fixed_rank.h"
#include "numeric/rational.h"
#include "sim/types.h"

namespace byzrename::sim {

/// Step-1 announcement of a process's own id (paper: <ID, my_id>).
struct IdMsg {
  Id id = 0;
  friend bool operator==(const IdMsg&, const IdMsg&) = default;
};

/// Step-2 echo of a previously received id (paper: <Echo, id>).
struct EchoMsg {
  Id id = 0;
  friend bool operator==(const EchoMsg&, const EchoMsg&) = default;
};

/// Step-3/4 readiness announcement (paper: <Ready, id>).
struct ReadyMsg {
  Id id = 0;
  friend bool operator==(const ReadyMsg&, const ReadyMsg&) = default;
};

/// One (id, proposed rank) entry of a voting-phase message.
struct RankEntry {
  Id id = 0;
  numeric::Rational rank;
  friend bool operator==(const RankEntry&, const RankEntry&) = default;
};

/// Voting-phase vote: the sender's entire ranks array (paper: <AA, ranks>).
/// Entries are sorted by id; receivers must tolerate arbitrary content
/// since Byzantine senders craft these freely.
struct RanksMsg {
  std::vector<RankEntry> entries;
  friend bool operator==(const RanksMsg&, const RanksMsg&) = default;
};

/// Voting-phase vote in fixed-point form: the semantic twin of RanksMsg
/// for senders whose whole ranks array sits on the instance's common
/// denominator grid (numeric/fixed_rank.h). SoA layout: `nums` holds
/// `width` little-endian two's-complement limbs per id, each an integer
/// numerator over `scale`; receivers of the same instance use the limbs
/// directly with zero per-delivery conversion. On the wire this message
/// IS a RanksMsg: the codec emits the byte-identical reduced-rational
/// encoding (and decodes those bytes back to a RanksMsg), so message
/// complexity accounting cannot tell the two apart.
struct FixedRanksMsg {
  std::int32_t width = 2;
  std::array<numeric::limb_t, numeric::kFixedRankLimbs> scale{};
  std::vector<Id> ids;             ///< sorted ascending
  std::vector<numeric::limb_t> nums;  ///< width limbs per id
  friend bool operator==(const FixedRanksMsg&, const FixedRanksMsg&) = default;
};

/// Materializes the exact-Rational equivalent of a fixed-point vote —
/// the message an exact-kernel sender with the same state would emit.
[[nodiscard]] RanksMsg to_ranks_msg(const FixedRanksMsg& msg);

/// Step-2 message of the 2-step algorithm (paper: <MultiEcho, ids>).
struct MultiEchoMsg {
  std::vector<Id> ids;
  friend bool operator==(const MultiEchoMsg&, const MultiEchoMsg&) = default;
};

/// Scalar value exchanged by the standalone approximate-agreement substrate.
struct AAValueMsg {
  numeric::Rational value;
  friend bool operator==(const AAValueMsg&, const AAValueMsg&) = default;
};

/// Generic small-integer message used by the consensus substrate
/// (phase-king rounds) and the bit-by-bit renaming baseline.
struct WordMsg {
  std::int64_t tag = 0;
  std::vector<std::int64_t> words;
  friend bool operator==(const WordMsg&, const WordMsg&) = default;
};

/// Crash-to-Byzantine translation (translate/): a simulated protocol
/// message, cast in the first half of a simulated round. The blob is the
/// codec-encoded inner payload.
struct WrappedCastMsg {
  std::int64_t sim_round = 0;
  std::vector<std::uint8_t> blob;
  friend bool operator==(const WrappedCastMsg&, const WrappedCastMsg&) = default;
};

/// Crash-to-Byzantine translation: an echo of a cast, attributed to the
/// original sender (requires the authenticated-link model).
struct WrappedEchoMsg {
  std::int64_t sender = 0;
  std::int64_t sim_round = 0;
  std::vector<std::uint8_t> blob;
  friend bool operator==(const WrappedEchoMsg&, const WrappedEchoMsg&) = default;
};

/// A message payload. Byzantine senders may emit any alternative at any
/// round with any content; correct receivers must ignore what they cannot
/// interpret at the current step.
using Payload = std::variant<IdMsg, EchoMsg, ReadyMsg, RanksMsg, MultiEchoMsg, AAValueMsg, WordMsg,
                             WrappedCastMsg, WrappedEchoMsg, FixedRanksMsg>;

/// Size of the payload in bits under a simple fixed-width wire model:
/// ids cost 64 bits (log Nmax), rationals their exact numerator +
/// denominator length, vectors a 32-bit length prefix. The network's
/// metrics use the exact binary codec instead (sim/codec.h); this
/// analytic model exists for quick worst-case estimates in tests.
[[nodiscard]] std::size_t wire_bits(const Payload& payload) noexcept;

/// Human-readable payload summary for traces and test diagnostics.
[[nodiscard]] std::string describe(const Payload& payload);

/// Immutable, ref-counted handle to a payload. A broadcast materializes
/// its payload exactly once; every Delivery then shares that one object,
/// so the N-receiver fan-out costs N refcount bumps instead of N deep
/// copies of (potentially O(N)-entry) message bodies. Receivers only
/// ever see `const Payload&`, which is what makes the sharing sound:
/// nothing downstream can mutate a delivered message.
class PayloadRef {
 public:
  /// Empty handle; the network fills every Delivery it hands out, so a
  /// default-constructed ref only exists inside pooled scratch buffers.
  PayloadRef() = default;

  /// Wraps a payload (or any message alternative) in a shared object.
  /// Implicit so existing `{link, SomeMsg{...}}` construction keeps
  /// working; wrapping is the point of the type.
  template <typename T>
    requires std::constructible_from<Payload, T&&> &&
             (!std::same_as<std::remove_cvref_t<T>, PayloadRef>)
  PayloadRef(T&& payload)  // NOLINT(google-explicit-constructor)
      : ptr_(std::make_shared<const Payload>(std::forward<T>(payload))) {}

  [[nodiscard]] const Payload& operator*() const noexcept { return *ptr_; }
  [[nodiscard]] const Payload* operator->() const noexcept { return ptr_.get(); }
  [[nodiscard]] explicit operator bool() const noexcept { return ptr_ != nullptr; }

  /// Deep value equality (used by tests; Byzantine equivocation makes
  /// pointer identity meaningless on the wire).
  friend bool operator==(const PayloadRef& a, const PayloadRef& b) {
    if (a.ptr_ == b.ptr_) return true;
    if (a.ptr_ == nullptr || b.ptr_ == nullptr) return false;
    return *a.ptr_ == *b.ptr_;
  }

 private:
  std::shared_ptr<const Payload> ptr_;
};

/// One delivered message: the receiver learns only the link label. The
/// payload handle aliases the sender's single broadcast object.
struct Delivery {
  LinkIndex link = 0;
  PayloadRef payload;
};

/// All messages delivered to one process in one round.
using Inbox = std::vector<Delivery>;

}  // namespace byzrename::sim

#endif  // BYZRENAME_SIM_PAYLOAD_H
