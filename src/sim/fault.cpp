#include "sim/fault.h"

#include <charconv>
#include <sstream>
#include <stdexcept>

#include "sim/rng.h"

namespace byzrename::sim {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("fault plan: " + message);
}

std::vector<std::string_view> split(std::string_view text, char separator) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

template <typename Number>
Number parse_number(std::string_view what, std::string_view token) {
  Number value{};
  const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || end != token.data() + token.size()) {
    fail(std::string(what) + " expects a number, got '" + std::string(token) + "'");
  }
  return value;
}

double parse_probability(std::string_view what, std::string_view token) {
  const double p = parse_number<double>(what, token);
  if (p < 0.0 || p > 1.0) fail(std::string(what) + ": probability must be in [0, 1]");
  return p;
}

/// Splits "body@r1..r2" into the body and an optional window.
struct Window {
  Round from = 1;
  Round to = 0;
  bool given = false;
};

Window parse_window(std::string_view what, std::string_view text, bool to_required) {
  Window window;
  if (text.empty()) return window;
  window.given = true;
  const std::size_t dots = text.find("..");
  if (dots == std::string_view::npos) {
    if (to_required) fail(std::string(what) + ": window needs r1..r2, got '" + std::string(text) + "'");
    window.from = parse_number<Round>(what, text);
    window.to = 0;
  } else {
    window.from = parse_number<Round>(what, text.substr(0, dots));
    window.to = parse_number<Round>(what, text.substr(dots + 2));
    if (window.to < window.from) fail(std::string(what) + ": empty round window");
  }
  if (window.from < 1) fail(std::string(what) + ": rounds start at 1");
  return window;
}

void parse_event(std::string_view event, FaultPlan& plan) {
  const std::size_t colon = event.find(':');
  if (colon == std::string_view::npos) {
    fail("event '" + std::string(event) + "' needs kind:value");
  }
  const std::string_view kind = event.substr(0, colon);
  std::string_view body = event.substr(colon + 1);
  std::string_view window_text;
  if (const std::size_t at = body.find('@'); at != std::string_view::npos) {
    window_text = body.substr(at + 1);
    body = body.substr(0, at);
  }

  if (kind == "drop" || kind == "dup") {
    const Window window = parse_window(kind, window_text, /*to_required=*/true);
    plan.links.push_back({kind == "drop" ? LinkFaultKind::kDrop : LinkFaultKind::kDuplicate,
                          parse_probability(kind, body), window.from, window.to, 1});
  } else if (kind == "delay") {
    const std::size_t x = body.find('x');
    if (x == std::string_view::npos) fail("delay expects P x K, got '" + std::string(body) + "'");
    const double p = parse_probability(kind, body.substr(0, x));
    const int delay = parse_number<int>(kind, body.substr(x + 1));
    if (delay < 1) fail("delay: K must be >= 1");
    const Window window = parse_window(kind, window_text, /*to_required=*/true);
    plan.links.push_back({LinkFaultKind::kDelay, p, window.from, window.to, delay});
  } else if (kind == "crash") {
    if (window_text.empty()) fail("crash expects PID@r1[..r2]");
    const Window window = parse_window(kind, window_text, /*to_required=*/false);
    plan.crashes.push_back({parse_number<ProcessIndex>(kind, body), window.from, window.to});
  } else if (kind == "part") {
    const std::size_t dash = body.find('-');
    if (dash == std::string_view::npos || window_text.empty()) {
      fail("part expects LO-HI@r1..r2");
    }
    const Window window = parse_window(kind, window_text, /*to_required=*/true);
    PartitionEvent part;
    part.lo = parse_number<ProcessIndex>(kind, body.substr(0, dash));
    part.hi = parse_number<ProcessIndex>(kind, body.substr(dash + 1));
    if (part.hi < part.lo) fail("part: island HI must be >= LO");
    part.from_round = window.from;
    part.to_round = window.to;
    plan.partitions.push_back(part);
  } else if (kind == "overshoot") {
    const int k = parse_number<int>(kind, body);
    if (k < 1) fail("overshoot: K must be >= 1");
    plan.fault_overshoot += k;
  } else if (kind == "forge") {
    ForgeRule rule;
    // Body is K[xP][=STRAT]; the strategy name comes last so 'x' inside
    // it can never be mistaken for the probability separator.
    if (const std::size_t eq = body.find('='); eq != std::string_view::npos) {
      rule.strategy = std::string(body.substr(eq + 1));
      if (rule.strategy.empty()) fail("forge: empty strategy name after '='");
      body = body.substr(0, eq);
    }
    if (const std::size_t x = body.find('x'); x != std::string_view::npos) {
      rule.probability = parse_probability(kind, body.substr(x + 1));
      body = body.substr(0, x);
    }
    rule.count = parse_number<int>(kind, body);
    if (rule.count < 0) fail("forge: K must be >= 0");
    const Window window = parse_window(kind, window_text, /*to_required=*/true);
    rule.from_round = window.from;
    rule.to_round = window.to;
    plan.forges.push_back(std::move(rule));
  } else if (kind == "restart") {
    if (window_text.empty()) fail("restart expects PID@R[,scramble|reset]");
    RestartEvent event;
    std::string_view round_text = window_text;
    if (const std::size_t comma = round_text.find(','); comma != std::string_view::npos) {
      std::string_view state = round_text.substr(comma + 1);
      round_text = round_text.substr(0, comma);
      // Accept both the bare token and the ISSUE's `state=` spelling.
      if (state.starts_with("state=")) state = state.substr(6);
      if (state == "scramble") {
        event.state = RestartState::kScramble;
      } else if (state == "reset") {
        event.state = RestartState::kReset;
      } else {
        fail("restart: state must be scramble or reset, got '" + std::string(state) + "'");
      }
    }
    event.process = parse_number<ProcessIndex>(kind, body);
    event.round = parse_number<Round>(kind, round_text);
    if (event.process < 0) fail("restart: PID must be >= 0");
    if (event.round < 1) fail("restart: rounds start at 1");
    plan.restarts.push_back(event);
  } else {
    fail("unknown event kind '" + std::string(kind) + "'");
  }
}

void append_window(std::ostringstream& out, Round from, Round to) {
  if (from == 1 && to == 0) return;
  out << '@' << from << ".." << (to == 0 ? from : to);
}

bool in_window(Round round, Round from, Round to) noexcept {
  return round >= from && (to == 0 || round <= to);
}

/// Hash chain over the decision coordinates — a pure function, never
/// sequential generator state. The forge/restart families reuse it with
/// a salt folded into `rule` so their decisions stay order-independent.
std::uint64_t decision_hash(std::uint64_t seed, Round round, ProcessIndex sender,
                            ProcessIndex receiver, std::size_t rule) noexcept {
  std::uint64_t h = seed;
  h = splitmix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(round)) << 1));
  h = splitmix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(sender)) << 17));
  h = splitmix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(receiver)) << 33));
  h = splitmix64(h ^ static_cast<std::uint64_t>(rule));
  return h;
}

double to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Uniform double in [0, 1) from the decision hash.
double decision_uniform(std::uint64_t seed, Round round, ProcessIndex sender,
                        ProcessIndex receiver, std::size_t rule) noexcept {
  return to_unit(decision_hash(seed, round, sender, receiver, rule));
}

/// Salts keeping the forge/restart hash streams disjoint from the link
/// fault stream (and from each other) without widening the coordinates.
constexpr std::size_t kForgeFireSalt = 0x10000;
constexpr std::size_t kForgeSenderSalt = 0x20000;
constexpr std::size_t kRestartSalt = 0x30000;

}  // namespace

FaultPlan parse_fault_plan(std::string_view spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  for (const std::string_view event : split(spec, '+')) {
    if (event.empty()) fail("empty event (doubled '+'?)");
    parse_event(event, plan);
  }
  return plan;
}

std::string to_spec(const FaultPlan& plan) {
  std::ostringstream out;
  bool first = true;
  const auto sep = [&] {
    if (!first) out << '+';
    first = false;
  };
  for (const LinkFaultRule& rule : plan.links) {
    sep();
    switch (rule.kind) {
      case LinkFaultKind::kDrop:
        out << "drop:" << rule.probability;
        break;
      case LinkFaultKind::kDuplicate:
        out << "dup:" << rule.probability;
        break;
      case LinkFaultKind::kDelay:
        out << "delay:" << rule.probability << 'x' << rule.delay_rounds;
        break;
    }
    append_window(out, rule.from_round, rule.to_round);
  }
  for (const CrashEvent& crash : plan.crashes) {
    sep();
    out << "crash:" << crash.process << '@' << crash.from_round;
    if (crash.to_round != 0) out << ".." << crash.to_round;
  }
  for (const PartitionEvent& part : plan.partitions) {
    sep();
    out << "part:" << part.lo << '-' << part.hi << '@' << part.from_round << ".."
        << (part.to_round == 0 ? part.from_round : part.to_round);
  }
  for (const ForgeRule& rule : plan.forges) {
    sep();
    out << "forge:" << rule.count;
    if (rule.probability != 1.0) out << 'x' << rule.probability;
    if (rule.strategy != "ghost") out << '=' << rule.strategy;
    append_window(out, rule.from_round, rule.to_round);
  }
  for (const RestartEvent& event : plan.restarts) {
    sep();
    out << "restart:" << event.process << '@' << event.round;
    if (event.state == RestartState::kScramble) out << ",scramble";
  }
  if (plan.fault_overshoot > 0) {
    sep();
    out << "overshoot:" << plan.fault_overshoot;
  }
  return out.str();
}

bool FaultInjector::crashed(ProcessIndex process, Round round) const noexcept {
  for (const CrashEvent& crash : plan_.crashes) {
    if (crash.process == process && in_window(round, crash.from_round, crash.to_round)) {
      return true;
    }
  }
  return false;
}

FaultInjector::Fate FaultInjector::fate(Round round, ProcessIndex sender,
                                        ProcessIndex receiver) const {
  Fate fate;
  if (crashed(receiver, round)) {
    fate.drop = true;
    return fate;
  }
  for (const PartitionEvent& part : plan_.partitions) {
    if (!in_window(round, part.from_round, part.to_round)) continue;
    const bool sender_inside = sender >= part.lo && sender <= part.hi;
    const bool receiver_inside = receiver >= part.lo && receiver <= part.hi;
    if (sender_inside != receiver_inside) {
      fate.drop = true;
      return fate;
    }
  }
  for (std::size_t i = 0; i < plan_.links.size(); ++i) {
    const LinkFaultRule& rule = plan_.links[i];
    if (!in_window(round, rule.from_round, rule.to_round)) continue;
    if (decision_uniform(seed_, round, sender, receiver, i) >= rule.probability) continue;
    switch (rule.kind) {
      case LinkFaultKind::kDrop:
        fate.drop = true;
        return fate;
      case LinkFaultKind::kDuplicate:
        fate.copies += 1;
        break;
      case LinkFaultKind::kDelay:
        fate.delay += rule.delay_rounds;
        break;
    }
  }
  return fate;
}

void FaultInjector::forged(Round round, ProcessIndex receiver, int n,
                           std::vector<ForgedMessage>& out) const {
  if (n <= 0) return;
  for (std::size_t i = 0; i < plan_.forges.size(); ++i) {
    const ForgeRule& rule = plan_.forges[i];
    if (!in_window(round, rule.from_round, rule.to_round)) continue;
    for (int slot = 0; slot < rule.count; ++slot) {
      // The slot index stands in for the sender coordinate; the real
      // spoofed sender is drawn from a separately salted hash so the
      // firing decision and the identity choice stay independent.
      const std::size_t coords = i * 64 + static_cast<std::size_t>(slot & 63);
      const std::uint64_t fire =
          decision_hash(seed_, round, static_cast<ProcessIndex>(slot), receiver,
                        kForgeFireSalt + coords);
      if (to_unit(fire) >= rule.probability) continue;
      const std::uint64_t pick =
          decision_hash(seed_, round, static_cast<ProcessIndex>(slot), receiver,
                        kForgeSenderSalt + coords);
      ForgedMessage forged;
      forged.spoofed_sender = static_cast<ProcessIndex>(pick % static_cast<std::uint64_t>(n));
      forged.rule = i;
      forged.entropy = splitmix64(fire ^ pick);
      out.push_back(forged);
    }
  }
}

int FaultInjector::restart_skew(std::size_t rule, const RestartEvent& event) const noexcept {
  if (event.round <= 1) return 0;
  const std::uint64_t h = decision_hash(seed_, event.round, event.process, event.process,
                                        kRestartSalt + rule);
  return static_cast<int>(h % static_cast<std::uint64_t>(event.round));
}

}  // namespace byzrename::sim
