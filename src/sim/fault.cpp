#include "sim/fault.h"

#include <charconv>
#include <sstream>
#include <stdexcept>

#include "sim/rng.h"

namespace byzrename::sim {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("fault plan: " + message);
}

std::vector<std::string_view> split(std::string_view text, char separator) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

template <typename Number>
Number parse_number(std::string_view what, std::string_view token) {
  Number value{};
  const auto [end, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || end != token.data() + token.size()) {
    fail(std::string(what) + " expects a number, got '" + std::string(token) + "'");
  }
  return value;
}

double parse_probability(std::string_view what, std::string_view token) {
  const double p = parse_number<double>(what, token);
  if (p < 0.0 || p > 1.0) fail(std::string(what) + ": probability must be in [0, 1]");
  return p;
}

/// Splits "body@r1..r2" into the body and an optional window.
struct Window {
  Round from = 1;
  Round to = 0;
  bool given = false;
};

Window parse_window(std::string_view what, std::string_view text, bool to_required) {
  Window window;
  if (text.empty()) return window;
  window.given = true;
  const std::size_t dots = text.find("..");
  if (dots == std::string_view::npos) {
    if (to_required) fail(std::string(what) + ": window needs r1..r2, got '" + std::string(text) + "'");
    window.from = parse_number<Round>(what, text);
    window.to = 0;
  } else {
    window.from = parse_number<Round>(what, text.substr(0, dots));
    window.to = parse_number<Round>(what, text.substr(dots + 2));
    if (window.to < window.from) fail(std::string(what) + ": empty round window");
  }
  if (window.from < 1) fail(std::string(what) + ": rounds start at 1");
  return window;
}

void parse_event(std::string_view event, FaultPlan& plan) {
  const std::size_t colon = event.find(':');
  if (colon == std::string_view::npos) {
    fail("event '" + std::string(event) + "' needs kind:value");
  }
  const std::string_view kind = event.substr(0, colon);
  std::string_view body = event.substr(colon + 1);
  std::string_view window_text;
  if (const std::size_t at = body.find('@'); at != std::string_view::npos) {
    window_text = body.substr(at + 1);
    body = body.substr(0, at);
  }

  if (kind == "drop" || kind == "dup") {
    const Window window = parse_window(kind, window_text, /*to_required=*/true);
    plan.links.push_back({kind == "drop" ? LinkFaultKind::kDrop : LinkFaultKind::kDuplicate,
                          parse_probability(kind, body), window.from, window.to, 1});
  } else if (kind == "delay") {
    const std::size_t x = body.find('x');
    if (x == std::string_view::npos) fail("delay expects P x K, got '" + std::string(body) + "'");
    const double p = parse_probability(kind, body.substr(0, x));
    const int delay = parse_number<int>(kind, body.substr(x + 1));
    if (delay < 1) fail("delay: K must be >= 1");
    const Window window = parse_window(kind, window_text, /*to_required=*/true);
    plan.links.push_back({LinkFaultKind::kDelay, p, window.from, window.to, delay});
  } else if (kind == "crash") {
    if (window_text.empty()) fail("crash expects PID@r1[..r2]");
    const Window window = parse_window(kind, window_text, /*to_required=*/false);
    plan.crashes.push_back({parse_number<ProcessIndex>(kind, body), window.from, window.to});
  } else if (kind == "part") {
    const std::size_t dash = body.find('-');
    if (dash == std::string_view::npos || window_text.empty()) {
      fail("part expects LO-HI@r1..r2");
    }
    const Window window = parse_window(kind, window_text, /*to_required=*/true);
    PartitionEvent part;
    part.lo = parse_number<ProcessIndex>(kind, body.substr(0, dash));
    part.hi = parse_number<ProcessIndex>(kind, body.substr(dash + 1));
    if (part.hi < part.lo) fail("part: island HI must be >= LO");
    part.from_round = window.from;
    part.to_round = window.to;
    plan.partitions.push_back(part);
  } else if (kind == "overshoot") {
    const int k = parse_number<int>(kind, body);
    if (k < 1) fail("overshoot: K must be >= 1");
    plan.fault_overshoot += k;
  } else {
    fail("unknown event kind '" + std::string(kind) + "'");
  }
}

void append_window(std::ostringstream& out, Round from, Round to) {
  if (from == 1 && to == 0) return;
  out << '@' << from << ".." << (to == 0 ? from : to);
}

bool in_window(Round round, Round from, Round to) noexcept {
  return round >= from && (to == 0 || round <= to);
}

/// Uniform double in [0, 1) from a hash chain over the decision
/// coordinates — a pure function, never sequential generator state.
double decision_uniform(std::uint64_t seed, Round round, ProcessIndex sender,
                        ProcessIndex receiver, std::size_t rule) noexcept {
  std::uint64_t h = seed;
  h = splitmix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(round)) << 1));
  h = splitmix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(sender)) << 17));
  h = splitmix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(receiver)) << 33));
  h = splitmix64(h ^ static_cast<std::uint64_t>(rule));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultPlan parse_fault_plan(std::string_view spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  for (const std::string_view event : split(spec, '+')) {
    if (event.empty()) fail("empty event (doubled '+'?)");
    parse_event(event, plan);
  }
  return plan;
}

std::string to_spec(const FaultPlan& plan) {
  std::ostringstream out;
  bool first = true;
  const auto sep = [&] {
    if (!first) out << '+';
    first = false;
  };
  for (const LinkFaultRule& rule : plan.links) {
    sep();
    switch (rule.kind) {
      case LinkFaultKind::kDrop:
        out << "drop:" << rule.probability;
        break;
      case LinkFaultKind::kDuplicate:
        out << "dup:" << rule.probability;
        break;
      case LinkFaultKind::kDelay:
        out << "delay:" << rule.probability << 'x' << rule.delay_rounds;
        break;
    }
    append_window(out, rule.from_round, rule.to_round);
  }
  for (const CrashEvent& crash : plan.crashes) {
    sep();
    out << "crash:" << crash.process << '@' << crash.from_round;
    if (crash.to_round != 0) out << ".." << crash.to_round;
  }
  for (const PartitionEvent& part : plan.partitions) {
    sep();
    out << "part:" << part.lo << '-' << part.hi << '@' << part.from_round << ".."
        << (part.to_round == 0 ? part.from_round : part.to_round);
  }
  if (plan.fault_overshoot > 0) {
    sep();
    out << "overshoot:" << plan.fault_overshoot;
  }
  return out.str();
}

bool FaultInjector::crashed(ProcessIndex process, Round round) const noexcept {
  for (const CrashEvent& crash : plan_.crashes) {
    if (crash.process == process && in_window(round, crash.from_round, crash.to_round)) {
      return true;
    }
  }
  return false;
}

FaultInjector::Fate FaultInjector::fate(Round round, ProcessIndex sender,
                                        ProcessIndex receiver) const {
  Fate fate;
  if (crashed(receiver, round)) {
    fate.drop = true;
    return fate;
  }
  for (const PartitionEvent& part : plan_.partitions) {
    if (!in_window(round, part.from_round, part.to_round)) continue;
    const bool sender_inside = sender >= part.lo && sender <= part.hi;
    const bool receiver_inside = receiver >= part.lo && receiver <= part.hi;
    if (sender_inside != receiver_inside) {
      fate.drop = true;
      return fate;
    }
  }
  for (std::size_t i = 0; i < plan_.links.size(); ++i) {
    const LinkFaultRule& rule = plan_.links[i];
    if (!in_window(round, rule.from_round, rule.to_round)) continue;
    if (decision_uniform(seed_, round, sender, receiver, i) >= rule.probability) continue;
    switch (rule.kind) {
      case LinkFaultKind::kDrop:
        fate.drop = true;
        return fate;
      case LinkFaultKind::kDuplicate:
        fate.copies += 1;
        break;
      case LinkFaultKind::kDelay:
        fate.delay += rule.delay_rounds;
        break;
    }
  }
  return fate;
}

}  // namespace byzrename::sim
