#include "sim/codec.h"

#include <limits>

#include "numeric/bigint.h"
#include "numeric/fixed_rank.h"
#include "numeric/rational.h"

namespace byzrename::sim {

namespace {

using numeric::BigInt;
using numeric::Rational;

enum class Kind : std::uint8_t {
  kId = 1,
  kEcho = 2,
  kReady = 3,
  kRanks = 4,
  kMultiEcho = 5,
  kAAValue = 6,
  kWord = 7,
  kWrappedCast = 8,
  kWrappedEcho = 9,
};

// --- writing ---------------------------------------------------------------

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

void put_svarint(std::vector<std::uint8_t>& out, std::int64_t value) {
  // Zigzag: interleave signs so small magnitudes encode small.
  const auto raw = static_cast<std::uint64_t>(value);
  put_varint(out, (raw << 1) ^ static_cast<std::uint64_t>(value >> 63));
}

void put_bigint(std::vector<std::uint8_t>& out, const BigInt& value) {
  const std::vector<std::uint8_t> magnitude = value.magnitude_bytes();
  put_varint(out, (static_cast<std::uint64_t>(magnitude.size()) << 1) |
                      (value.is_negative() ? 1u : 0u));
  out.insert(out.end(), magnitude.begin(), magnitude.end());
}

void put_rational(std::vector<std::uint8_t>& out, const Rational& value) {
  put_bigint(out, value.numerator());
  // Denominator is canonically positive; encode without sign bit.
  const std::vector<std::uint8_t> magnitude = value.denominator().magnitude_bytes();
  put_varint(out, static_cast<std::uint64_t>(magnitude.size()));
  out.insert(out.end(), magnitude.begin(), magnitude.end());
}

// --- analytic sizes --------------------------------------------------------
// The network charges encoded_bits() on every broadcast; these mirror
// the writers above byte-for-byte without materializing any buffer.

std::size_t varint_len(std::uint64_t value) noexcept {
  std::size_t bytes = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++bytes;
  }
  return bytes;
}

std::size_t svarint_len(std::int64_t value) noexcept {
  const auto raw = static_cast<std::uint64_t>(value);
  return varint_len((raw << 1) ^ static_cast<std::uint64_t>(value >> 63));
}

std::size_t rational_len(const Rational& value) noexcept {
  const std::size_t num_bytes = (value.numerator().bit_length() + 7) / 8;
  const std::size_t den_bytes = (value.denominator().bit_length() + 7) / 8;
  return varint_len((static_cast<std::uint64_t>(num_bytes) << 1) |
                    (value.is_negative() ? 1u : 0u)) +
         num_bytes + varint_len(den_bytes) + den_bytes;
}

// --- reading ---------------------------------------------------------------

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  [[nodiscard]] bool at_end() const noexcept { return pos_ == bytes_.size(); }

  [[nodiscard]] std::optional<std::uint8_t> byte() {
    if (pos_ >= bytes_.size()) return std::nullopt;
    return bytes_[pos_++];
  }

  [[nodiscard]] std::optional<std::uint64_t> varint() {
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const auto next = byte();
      if (!next.has_value()) return std::nullopt;
      value |= static_cast<std::uint64_t>(*next & 0x7F) << shift;
      if ((*next & 0x80) == 0) {
        // Canonicality: no zero-padding groups (0x80 0x00 is not 0) and
        // no bits beyond 64 in the last possible group.
        if (shift > 0 && *next == 0) return std::nullopt;
        if (shift == 63 && (*next & 0x7E) != 0) return std::nullopt;
        return value;
      }
    }
    return std::nullopt;  // continuation bit never cleared
  }

  [[nodiscard]] std::optional<std::int64_t> svarint() {
    const auto raw = varint();
    if (!raw.has_value()) return std::nullopt;
    return static_cast<std::int64_t>((*raw >> 1) ^ (~(*raw & 1) + 1));
  }

  [[nodiscard]] std::optional<std::vector<std::uint8_t>> blob(std::uint64_t length) {
    if (length > bytes_.size() - pos_) return std::nullopt;
    std::vector<std::uint8_t> out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + length));
    pos_ += length;
    return out;
  }

  [[nodiscard]] std::optional<BigInt> bigint() {
    const auto header = varint();
    if (!header.has_value()) return std::nullopt;
    const bool negative = (*header & 1) != 0;
    const auto bytes = blob(*header >> 1);
    if (!bytes.has_value()) return std::nullopt;
    if (!bytes->empty() && bytes->back() == 0) return std::nullopt;  // non-canonical
    return BigInt::from_magnitude_bytes(*bytes, negative);
  }

  [[nodiscard]] std::optional<Rational> rational() {
    const auto numerator = bigint();
    if (!numerator.has_value()) return std::nullopt;
    const auto den_length = varint();
    if (!den_length.has_value()) return std::nullopt;
    const auto den_bytes = blob(*den_length);
    if (!den_bytes.has_value()) return std::nullopt;
    if (!den_bytes->empty() && den_bytes->back() == 0) return std::nullopt;
    const BigInt denominator = BigInt::from_magnitude_bytes(*den_bytes, false);
    if (denominator.is_zero()) return std::nullopt;
    return Rational(*numerator, denominator);
  }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

constexpr std::uint64_t kMaxVectorEntries = 1 << 20;  // sanity cap on Byzantine input

}  // namespace

std::vector<std::uint8_t> encode(const Payload& payload) {
  std::vector<std::uint8_t> out;
  std::visit(
      [&out](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, IdMsg>) {
          out.push_back(static_cast<std::uint8_t>(Kind::kId));
          put_svarint(out, msg.id);
        } else if constexpr (std::is_same_v<T, EchoMsg>) {
          out.push_back(static_cast<std::uint8_t>(Kind::kEcho));
          put_svarint(out, msg.id);
        } else if constexpr (std::is_same_v<T, ReadyMsg>) {
          out.push_back(static_cast<std::uint8_t>(Kind::kReady));
          put_svarint(out, msg.id);
        } else if constexpr (std::is_same_v<T, RanksMsg>) {
          out.push_back(static_cast<std::uint8_t>(Kind::kRanks));
          put_varint(out, msg.entries.size());
          for (const RankEntry& entry : msg.entries) {
            put_svarint(out, entry.id);
            put_rational(out, entry.rank);
          }
        } else if constexpr (std::is_same_v<T, MultiEchoMsg>) {
          out.push_back(static_cast<std::uint8_t>(Kind::kMultiEcho));
          put_varint(out, msg.ids.size());
          for (const Id id : msg.ids) put_svarint(out, id);
        } else if constexpr (std::is_same_v<T, AAValueMsg>) {
          out.push_back(static_cast<std::uint8_t>(Kind::kAAValue));
          put_rational(out, msg.value);
        } else if constexpr (std::is_same_v<T, WordMsg>) {
          out.push_back(static_cast<std::uint8_t>(Kind::kWord));
          put_svarint(out, msg.tag);
          put_varint(out, msg.words.size());
          for (const std::int64_t word : msg.words) put_svarint(out, word);
        } else if constexpr (std::is_same_v<T, WrappedCastMsg>) {
          out.push_back(static_cast<std::uint8_t>(Kind::kWrappedCast));
          put_svarint(out, msg.sim_round);
          put_varint(out, msg.blob.size());
          out.insert(out.end(), msg.blob.begin(), msg.blob.end());
        } else if constexpr (std::is_same_v<T, WrappedEchoMsg>) {
          out.push_back(static_cast<std::uint8_t>(Kind::kWrappedEcho));
          put_svarint(out, msg.sender);
          put_svarint(out, msg.sim_round);
          put_varint(out, msg.blob.size());
          out.insert(out.end(), msg.blob.begin(), msg.blob.end());
        } else {
          static_assert(std::is_same_v<T, FixedRanksMsg>);
          // A fixed-point vote encodes as the byte-identical RanksMsg of
          // its reduced-rational equivalents: message complexity (and
          // the decoder) cannot distinguish the two representations.
          const BigInt scale = BigInt::from_words64(
              msg.scale.data(), numeric::kFixedRankLimbs, false);
          out.push_back(static_cast<std::uint8_t>(Kind::kRanks));
          put_varint(out, msg.ids.size());
          for (std::size_t i = 0; i < msg.ids.size(); ++i) {
            put_svarint(out, msg.ids[i]);
            put_rational(out, numeric::fixed_to_rational(
                                  msg.nums.data() + i * msg.width, msg.width, scale));
          }
        }
      },
      payload);
  return out;
}

std::optional<Payload> decode(const std::vector<std::uint8_t>& bytes) {
  Reader reader(bytes);
  const auto kind = reader.byte();
  if (!kind.has_value()) return std::nullopt;

  std::optional<Payload> result;
  switch (static_cast<Kind>(*kind)) {
    case Kind::kId:
    case Kind::kEcho:
    case Kind::kReady: {
      const auto id = reader.svarint();
      if (!id.has_value()) return std::nullopt;
      if (static_cast<Kind>(*kind) == Kind::kId) {
        result = IdMsg{*id};
      } else if (static_cast<Kind>(*kind) == Kind::kEcho) {
        result = EchoMsg{*id};
      } else {
        result = ReadyMsg{*id};
      }
      break;
    }
    case Kind::kRanks: {
      const auto count = reader.varint();
      if (!count.has_value() || *count > kMaxVectorEntries) return std::nullopt;
      RanksMsg msg;
      msg.entries.reserve(static_cast<std::size_t>(*count));
      for (std::uint64_t i = 0; i < *count; ++i) {
        const auto id = reader.svarint();
        if (!id.has_value()) return std::nullopt;
        auto rank = reader.rational();
        if (!rank.has_value()) return std::nullopt;
        msg.entries.push_back({*id, std::move(*rank)});
      }
      result = std::move(msg);
      break;
    }
    case Kind::kMultiEcho: {
      const auto count = reader.varint();
      if (!count.has_value() || *count > kMaxVectorEntries) return std::nullopt;
      MultiEchoMsg msg;
      msg.ids.reserve(static_cast<std::size_t>(*count));
      for (std::uint64_t i = 0; i < *count; ++i) {
        const auto id = reader.svarint();
        if (!id.has_value()) return std::nullopt;
        msg.ids.push_back(*id);
      }
      result = std::move(msg);
      break;
    }
    case Kind::kAAValue: {
      auto value = reader.rational();
      if (!value.has_value()) return std::nullopt;
      result = AAValueMsg{std::move(*value)};
      break;
    }
    case Kind::kWord: {
      const auto tag = reader.svarint();
      if (!tag.has_value()) return std::nullopt;
      const auto count = reader.varint();
      if (!count.has_value() || *count > kMaxVectorEntries) return std::nullopt;
      WordMsg msg{*tag, {}};
      msg.words.reserve(static_cast<std::size_t>(*count));
      for (std::uint64_t i = 0; i < *count; ++i) {
        const auto word = reader.svarint();
        if (!word.has_value()) return std::nullopt;
        msg.words.push_back(*word);
      }
      result = std::move(msg);
      break;
    }
    case Kind::kWrappedCast: {
      const auto sim_round = reader.svarint();
      if (!sim_round.has_value()) return std::nullopt;
      const auto length = reader.varint();
      if (!length.has_value() || *length > kMaxVectorEntries) return std::nullopt;
      auto blob = reader.blob(*length);
      if (!blob.has_value()) return std::nullopt;
      result = WrappedCastMsg{*sim_round, std::move(*blob)};
      break;
    }
    case Kind::kWrappedEcho: {
      const auto sender = reader.svarint();
      if (!sender.has_value()) return std::nullopt;
      const auto sim_round = reader.svarint();
      if (!sim_round.has_value()) return std::nullopt;
      const auto length = reader.varint();
      if (!length.has_value() || *length > kMaxVectorEntries) return std::nullopt;
      auto blob = reader.blob(*length);
      if (!blob.has_value()) return std::nullopt;
      result = WrappedEchoMsg{*sender, *sim_round, std::move(*blob)};
      break;
    }
    default:
      return std::nullopt;
  }
  if (!reader.at_end()) return std::nullopt;  // trailing garbage
  return result;
}

std::size_t encoded_bits(const Payload& payload) {
  // Rational-bearing messages dominate the hot all-to-all rounds; size
  // them analytically so the per-broadcast charge allocates nothing.
  // codec_test asserts these equal 8 * encode().size() exactly.
  if (const auto* ranks = std::get_if<RanksMsg>(&payload)) {
    std::size_t bytes = 1 + varint_len(ranks->entries.size());
    for (const RankEntry& entry : ranks->entries) {
      bytes += svarint_len(entry.id) + rational_len(entry.rank);
    }
    return bytes * 8;
  }
  if (const auto* fixed = std::get_if<FixedRanksMsg>(&payload)) {
    const BigInt scale =
        BigInt::from_words64(fixed->scale.data(), numeric::kFixedRankLimbs, false);
    std::size_t bytes = 1 + varint_len(fixed->ids.size());
    for (std::size_t i = 0; i < fixed->ids.size(); ++i) {
      bytes += svarint_len(fixed->ids[i]) +
               rational_len(numeric::fixed_to_rational(fixed->nums.data() + i * fixed->width,
                                                       fixed->width, scale));
    }
    return bytes * 8;
  }
  if (const auto* aa = std::get_if<AAValueMsg>(&payload)) {
    return (1 + rational_len(aa->value)) * 8;
  }
  return encode(payload).size() * 8;
}

}  // namespace byzrename::sim
