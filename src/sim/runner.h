#ifndef BYZRENAME_SIM_RUNNER_H
#define BYZRENAME_SIM_RUNNER_H

#include <functional>
#include <optional>
#include <vector>

#include "sim/metrics.h"
#include "sim/network.h"
#include "sim/types.h"

namespace byzrename::sim {

/// Outcome of driving a network to completion.
struct RunResult {
  /// Number of synchronous rounds executed.
  int rounds = 0;
  /// True iff every correct process reported done() within the budget.
  bool terminated = false;
  /// decision()[i] for each process i (nullopt for Byzantine processes
  /// and for correct processes that did not decide).
  std::vector<std::optional<Name>> decisions;
  /// Round in which process i was first observed done() (0 = never);
  /// provenance for the checker's violation records.
  std::vector<Round> decide_rounds;
  Metrics metrics;
};

/// Observation hook invoked after each round's receive phase; used by
/// benches to record per-round convergence traces.
using RoundObserver = std::function<void(Round, const Network&)>;

/// Pre/post bracket around each round's execution, for callers that
/// need to MEASURE a round rather than observe its outcome (the
/// obs/prof phase timer). on_round_begin fires immediately before
/// Network::run_round and on_round_end immediately after it — BEFORE
/// the RoundObserver, so observer/telemetry cost is never attributed to
/// the protocol phase being timed. Implementations must not touch the
/// network; this is a timing seam, not a second observer.
class RoundHook {
 public:
  virtual ~RoundHook() = default;
  virtual void on_round_begin(Round round) = 0;
  virtual void on_round_end(Round round) = 0;
};

/// Runs the network round by round until every correct process is done or
/// @p max_rounds is exhausted. All algorithms in the paper terminate in a
/// round count known a priori, so a run hitting max_rounds indicates a
/// bug and is reported via RunResult::terminated = false.
RunResult run_to_completion(Network& network, int max_rounds, const RoundObserver& observer = {},
                            RoundHook* hook = nullptr);

}  // namespace byzrename::sim

#endif  // BYZRENAME_SIM_RUNNER_H
