#include "sim/network.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "sim/codec.h"
#include "trace/event_log.h"

namespace byzrename::sim {

void Outbox::send_to(ProcessIndex dest, PayloadRef payload) {
  if (!targeted_allowed_) {
    throw std::logic_error("Outbox::send_to: correct processes may only broadcast");
  }
  entries_.push_back({dest, std::move(payload)});
}

Network::Network(std::vector<std::unique_ptr<ProcessBehavior>> behaviors,
                 std::vector<bool> byzantine, Rng rng, bool scramble_links)
    : behaviors_(std::move(behaviors)), byzantine_(std::move(byzantine)) {
  if (behaviors_.empty()) throw std::invalid_argument("Network: no processes");
  if (byzantine_.size() != behaviors_.size()) {
    throw std::invalid_argument("Network: byzantine flag count mismatch");
  }
  const std::size_t n = behaviors_.size();
  done_.assign(n, false);
  decided_round_.assign(n, 0);
  link_of_sender_.resize(n);
  for (std::size_t receiver = 0; receiver < n; ++receiver) {
    std::vector<LinkIndex>& links = link_of_sender_[receiver];
    links.resize(n);
    std::iota(links.begin(), links.end(), 0);
    // Scramble so a link label reveals nothing about the peer behind it.
    if (scramble_links) std::shuffle(links.begin(), links.end(), rng.engine());
  }
  inboxes_.resize(n);
  link_offsets_.resize(n + 1);
  restarted_.assign(n, false);
  round_offset_.assign(n, 0);
}

void Network::run_round(Round round) {
  const std::size_t n = behaviors_.size();
  // Reuse the per-receiver buffers: clear drops last round's payload refs
  // but keeps each vector's capacity, so steady-state rounds perform no
  // inbox (re)allocation at all.
  for (Inbox& inbox : inboxes_) inbox.clear();
  RoundMetrics round_metrics;

  // Transient restarts (Lenzen–Rybicki): at the START of the event's
  // round the process is handed a fresh behavior, forgets any decision,
  // and loses every in-flight delayed delivery addressed to it. Its
  // local round counter resets to 1 (kReset) or to a hash-derived wrong
  // value in [1, round] (kScramble). Processed before the delayed flush
  // so deliveries due this very round are lost too.
  if (fault_injector_ != nullptr && behavior_factory_) {
    const std::vector<RestartEvent>& restarts = fault_injector_->plan().restarts;
    for (std::size_t e = 0; e < restarts.size(); ++e) {
      const RestartEvent& event = restarts[e];
      const auto pid = static_cast<std::size_t>(event.process);
      if (event.round != round || pid >= n || byzantine_[pid]) continue;
      behaviors_[pid] = behavior_factory_(event.process);
      restarted_[pid] = true;
      done_[pid] = false;
      decided_round_[pid] = 0;
      int skew = 0;
      if (event.state == RestartState::kScramble) {
        skew = fault_injector_->restart_skew(e, event);
      }
      round_offset_[pid] = 1 - static_cast<int>(round) + skew;
      for (DelayedBatch& batch : delayed_) {
        const std::size_t lost = std::erase_if(
            batch.entries, [&](const auto& entry) { return entry.first == pid; });
        round_metrics.injected_drops += lost;
      }
      round_metrics.injected_restarts += 1;
      if (event_log_ != nullptr) {
        std::string note = "restart: reset";
        if (event.state == RestartState::kScramble) {
          note = "restart: scramble +" + std::to_string(skew);
        }
        event_log_->record({round, trace::Event::Kind::kFault, event.process, std::nullopt,
                            -1, false, std::move(note)});
      }
    }
  }

  // Deliveries a delay rule postponed to this round. Their message/bit
  // cost was charged in the round they were sent; a receiver that has
  // crashed in the meantime loses them for good.
  for (auto it = delayed_.begin(); it != delayed_.end(); ++it) {
    if (it->due != round) continue;
    for (auto& [receiver, delivery] : it->entries) {
      if (fault_injector_ != nullptr &&
          fault_injector_->crashed(static_cast<ProcessIndex>(receiver), round)) {
        round_metrics.injected_drops += 1;
        if (event_log_ != nullptr) {
          event_log_->record({round, trace::Event::Kind::kFault,
                              static_cast<ProcessIndex>(receiver), std::nullopt,
                              delivery.link, byzantine_[receiver],
                              "crash: delayed delivery lost"});
        }
        continue;
      }
      inboxes_[receiver].push_back(std::move(delivery));
    }
    delayed_.erase(it);
    break;  // at most one batch per round by construction
  }

  for (std::size_t sender = 0; sender < n; ++sender) {
    // A crashed process takes no send action at all; on recovery it
    // resumes the protocol from its pre-crash state.
    if (fault_injector_ != nullptr &&
        fault_injector_->crashed(static_cast<ProcessIndex>(sender), round)) {
      if (event_log_ != nullptr) {
        event_log_->record({round, trace::Event::Kind::kFault,
                            static_cast<ProcessIndex>(sender), std::nullopt, -1,
                            byzantine_[sender], "crash: no send"});
      }
      continue;
    }
    Outbox out(byzantine_[sender]);
    // A restarted process acts on its own (skewed) view of the round.
    behaviors_[sender]->on_send(round + round_offset_[sender], out);
    for (const Outbox::Entry& entry : out.entries()) {
      if (event_log_ != nullptr) {
        event_log_->record({round, trace::Event::Kind::kSend,
                            static_cast<ProcessIndex>(sender), entry.dest, -1,
                            byzantine_[sender], describe(*entry.payload)});
      }
      // Charge the exact size the binary codec produces, so the paper's
      // bit-complexity bounds are checked against a real encoding.
      const std::size_t payload_bits = encoded_bits(*entry.payload);
      if (entry.dest.has_value() && byzantine_[sender]) round_metrics.equivocating_sends += 1;
      auto deliver = [&](std::size_t receiver) {
        FaultInjector::Fate fate;
        if (fault_injector_ != nullptr) {
          fate = fault_injector_->fate(round, static_cast<ProcessIndex>(sender),
                                       static_cast<ProcessIndex>(receiver));
        }
        if (fate.drop) {
          round_metrics.injected_drops += 1;
          if (event_log_ != nullptr) {
            event_log_->record({round, trace::Event::Kind::kFault,
                                static_cast<ProcessIndex>(receiver), std::nullopt,
                                link_of_sender_[receiver][sender], byzantine_[receiver],
                                "drop"});
          }
          return;
        }
        round_metrics.messages += 1;
        round_metrics.bits += payload_bits;
        round_metrics.max_message_bits = std::max(round_metrics.max_message_bits, payload_bits);
        if (!byzantine_[sender]) {
          round_metrics.correct_messages += 1;
          round_metrics.correct_bits += payload_bits;
          round_metrics.max_correct_message_bits =
              std::max(round_metrics.max_correct_message_bits, payload_bits);
        }
        // Sharing, not copying: the delivery aliases the sender's single
        // payload object behind a refcount bump.
        const Delivery delivery{link_of_sender_[receiver][sender], entry.payload};
        if (event_log_ != nullptr && (fate.delay > 0 || fate.copies > 1)) {
          std::string note;
          if (fate.copies > 1) note = "dup x" + std::to_string(fate.copies);
          if (fate.delay > 0) {
            if (!note.empty()) note += ", ";
            note += "delay +" + std::to_string(fate.delay);
          }
          event_log_->record({round, trace::Event::Kind::kFault,
                              static_cast<ProcessIndex>(receiver), std::nullopt,
                              delivery.link, byzantine_[receiver], std::move(note)});
        }
        if (fate.delay > 0) {
          round_metrics.injected_delays += 1;
          std::vector<std::pair<std::size_t, Delivery>>* batch = nullptr;
          for (DelayedBatch& candidate : delayed_) {
            if (candidate.due == round + fate.delay) {
              batch = &candidate.entries;
              break;
            }
          }
          if (batch == nullptr) {
            delayed_.push_back({round + fate.delay, {}});
            batch = &delayed_.back().entries;
          }
          // A delivery that is both duplicated and delayed keeps its
          // extra copies: they travel with the delayed message.
          batch->emplace_back(receiver, delivery);
          for (int copy = 1; copy < fate.copies; ++copy) {
            round_metrics.injected_duplicates += 1;
            batch->emplace_back(receiver, delivery);
          }
          return;
        }
        inboxes_[receiver].push_back(delivery);
        for (int copy = 1; copy < fate.copies; ++copy) {
          round_metrics.injected_duplicates += 1;
          inboxes_[receiver].push_back(delivery);
        }
      };
      if (entry.dest.has_value()) {
        const auto dest = static_cast<std::size_t>(*entry.dest);
        if (dest >= n) throw std::out_of_range("Network: send_to destination out of range");
        deliver(dest);
      } else if (fault_injector_ == nullptr && event_log_ == nullptr) {
        // Fault-free, untraced broadcast: identical bookkeeping to n
        // deliver() calls, folded out of the fan-out loop. The O(N^2)
        // echo steps (and every voting round) take this path in
        // benchmarks and clean campaigns.
        round_metrics.messages += n;
        round_metrics.bits += n * payload_bits;
        round_metrics.max_message_bits = std::max(round_metrics.max_message_bits, payload_bits);
        if (!byzantine_[sender]) {
          round_metrics.correct_messages += n;
          round_metrics.correct_bits += n * payload_bits;
          round_metrics.max_correct_message_bits =
              std::max(round_metrics.max_correct_message_bits, payload_bits);
        }
        for (std::size_t receiver = 0; receiver < n; ++receiver) {
          inboxes_[receiver].push_back({link_of_sender_[receiver][sender], entry.payload});
        }
      } else {
        for (std::size_t receiver = 0; receiver < n; ++receiver) deliver(receiver);
      }
    }
  }

  // Impersonation (Okun): the external adversary appends up to k forged
  // deliveries per correct receiver, each arriving on the exact link the
  // spoofed sender's real messages use. Forgeries are not charged to
  // messages/bits — the impersonator is outside the system, and those
  // counters feed the paper's complexity budgets.
  if (fault_injector_ != nullptr && !fault_injector_->plan().forges.empty()) {
    const std::vector<ForgeRule>& forges = fault_injector_->plan().forges;
    for (std::size_t receiver = 0; receiver < n; ++receiver) {
      if (byzantine_[receiver]) continue;
      if (fault_injector_->crashed(static_cast<ProcessIndex>(receiver), round)) continue;
      forged_scratch_.clear();
      fault_injector_->forged(round, static_cast<ProcessIndex>(receiver),
                              static_cast<int>(n), forged_scratch_);
      for (const FaultInjector::ForgedMessage& forged : forged_scratch_) {
        PayloadRef payload;
        if (forgery_source_ != nullptr) {
          payload = forgery_source_->forge(round, forged.spoofed_sender,
                                           static_cast<ProcessIndex>(receiver),
                                           forges[forged.rule].strategy, forged.entropy);
        } else {
          // Standalone-sim fallback: a phantom process announcing a
          // hash-derived id far outside any real id range.
          payload = IdMsg{static_cast<Id>(forged.entropy >> 32)};
        }
        if (!payload) continue;  // strategy declined the slot
        const std::size_t spoofed = static_cast<std::size_t>(forged.spoofed_sender);
        inboxes_[receiver].push_back({link_of_sender_[receiver][spoofed], payload});
        round_metrics.injected_forgeries += 1;
        if (event_log_ != nullptr) {
          event_log_->record({round, trace::Event::Kind::kFault,
                              static_cast<ProcessIndex>(receiver), std::nullopt,
                              link_of_sender_[receiver][spoofed], byzantine_[receiver],
                              "forge: as p" + std::to_string(forged.spoofed_sender) + " " +
                                  describe(*payload)});
        }
      }
    }
  }
  metrics_.add_round(round_metrics);

  for (std::size_t receiver = 0; receiver < n; ++receiver) {
    // A crashed process takes no receive action either; its (empty)
    // inbox for this round is gone for good.
    if (fault_injector_ != nullptr &&
        fault_injector_->crashed(static_cast<ProcessIndex>(receiver), round)) {
      if (event_log_ != nullptr) {
        event_log_->record({round, trace::Event::Kind::kFault,
                            static_cast<ProcessIndex>(receiver), std::nullopt, -1,
                            byzantine_[receiver], "crash: no receive"});
      }
      continue;
    }
    Inbox& inbox = inboxes_[receiver];
    // Stable order by link label: receiver-local, carries no sender info.
    // Link labels live in [0, N), so a counting sort places each delivery
    // in O(1) — O(N + M) total versus stable_sort's O(M log M) compares —
    // and the scratch buffer is pooled across rounds like the inboxes.
    if (inbox.size() > 1) {
      std::fill(link_offsets_.begin(), link_offsets_.end(), 0u);
      for (const Delivery& d : inbox) {
        link_offsets_[static_cast<std::size_t>(d.link) + 1] += 1;
      }
      for (std::size_t l = 1; l <= n; ++l) link_offsets_[l] += link_offsets_[l - 1];
      sort_scratch_.resize(inbox.size());
      for (Delivery& d : inbox) {
        sort_scratch_[link_offsets_[static_cast<std::size_t>(d.link)]++] = std::move(d);
      }
      inbox.swap(sort_scratch_);
    }
    if (event_log_ != nullptr) {
      for (const Delivery& d : inbox) {
        event_log_->record({round, trace::Event::Kind::kDeliver,
                            static_cast<ProcessIndex>(receiver), std::nullopt, d.link,
                            byzantine_[receiver], describe(*d.payload)});
      }
    }
    behaviors_[receiver]->on_receive(round + round_offset_[receiver], inbox);
  }

  // Decision transitions: always tracked (the checker's provenance needs
  // decide rounds) and additionally fed to the trace (the trace-event
  // exporter's decide slices) when a log is attached; byzantine behaviors
  // have no meaningful done() state.
  for (std::size_t i = 0; i < n; ++i) {
    if (byzantine_[i] || done_[i] || !behaviors_[i]->done()) continue;
    done_[i] = true;
    decided_round_[i] = round;
    if (event_log_ != nullptr) {
      const std::optional<Name> name = behaviors_[i]->decision();
      event_log_->record({round, trace::Event::Kind::kDecide, static_cast<ProcessIndex>(i),
                          std::nullopt, -1, false,
                          name.has_value() ? "name=" + std::to_string(*name) : "(no name)"});
    }
  }
}

bool Network::all_correct_done() const {
  for (std::size_t i = 0; i < behaviors_.size(); ++i) {
    if (!byzantine_[i] && !behaviors_[i]->done()) return false;
  }
  return true;
}

}  // namespace byzrename::sim
