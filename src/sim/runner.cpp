#include "sim/runner.h"

namespace byzrename::sim {

RunResult run_to_completion(Network& network, int max_rounds, const RoundObserver& observer,
                            RoundHook* hook) {
  RunResult result;
  for (Round round = 1; round <= max_rounds; ++round) {
    if (hook != nullptr) hook->on_round_begin(round);
    network.run_round(round);
    if (hook != nullptr) hook->on_round_end(round);
    result.rounds = round;
    if (observer) observer(round, network);
    if (network.all_correct_done()) {
      result.terminated = true;
      break;
    }
  }
  result.decisions.reserve(static_cast<std::size_t>(network.size()));
  result.decide_rounds.reserve(static_cast<std::size_t>(network.size()));
  for (ProcessIndex i = 0; i < network.size(); ++i) {
    if (network.is_byzantine(i)) {
      result.decisions.emplace_back(std::nullopt);
    } else {
      result.decisions.push_back(network.behavior(i).decision());
    }
    result.decide_rounds.push_back(network.is_byzantine(i) ? 0 : network.decided_round(i));
  }
  result.metrics = network.metrics();
  return result;
}

}  // namespace byzrename::sim
