#ifndef BYZRENAME_SIM_RNG_H
#define BYZRENAME_SIM_RNG_H

#include <cstdint>
#include <random>

namespace byzrename::sim {

/// SplitMix64 finalizer (Steele, Lea & Flood 2014). Bijective on 64-bit
/// words with strong avalanche behavior, which makes it the standard way
/// to derive independent seed streams from one master seed: nearby inputs
/// (consecutive cell/repetition indices) land on statistically unrelated
/// outputs.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic random source. Every randomized component of the
/// simulator (link-label scrambling, randomized adversaries, workload
/// generators) draws from an explicitly seeded Rng so that runs are
/// reproducible bit-for-bit from their seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Bernoulli trial with the given success probability.
  [[nodiscard]] bool chance(double probability) {
    std::bernoulli_distribution dist(probability);
    return dist(engine_);
  }

  /// Derives an independent child generator; use to hand sub-components
  /// their own streams without sharing state.
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  /// Splits @p seed into the seed of stream @p stream without consuming
  /// any generator state: a pure function of (seed, stream), so callers
  /// (the campaign engine, CLI --repeat) can hand out per-run seeds from
  /// any thread in any order and always derive the same values. Unlike
  /// fork(), which advances the parent engine, this is stateless.
  [[nodiscard]] static constexpr std::uint64_t derive_stream(std::uint64_t seed,
                                                             std::uint64_t stream) noexcept {
    return splitmix64(splitmix64(seed) ^ (0xd1b54a32d192ed03ull * (stream + 1)));
  }

  /// Underlying engine for use with standard algorithms (std::shuffle).
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace byzrename::sim

#endif  // BYZRENAME_SIM_RNG_H
