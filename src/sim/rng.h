#ifndef BYZRENAME_SIM_RNG_H
#define BYZRENAME_SIM_RNG_H

#include <cstdint>
#include <random>

namespace byzrename::sim {

/// Deterministic random source. Every randomized component of the
/// simulator (link-label scrambling, randomized adversaries, workload
/// generators) draws from an explicitly seeded Rng so that runs are
/// reproducible bit-for-bit from their seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Bernoulli trial with the given success probability.
  [[nodiscard]] bool chance(double probability) {
    std::bernoulli_distribution dist(probability);
    return dist(engine_);
  }

  /// Derives an independent child generator; use to hand sub-components
  /// their own streams without sharing state.
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  /// Underlying engine for use with standard algorithms (std::shuffle).
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace byzrename::sim

#endif  // BYZRENAME_SIM_RNG_H
