#ifndef BYZRENAME_SIM_PROCESS_H
#define BYZRENAME_SIM_PROCESS_H

#include <optional>
#include <utility>
#include <vector>

#include "sim/payload.h"
#include "sim/types.h"

namespace byzrename::sim {

/// Collects the messages one process emits during the send phase of a
/// round. Correct processes in the paper's algorithms only ever perform
/// all-to-all broadcast; targeted (and therefore equivocating) sends are
/// reserved to Byzantine behaviors and enforced at run time.
class Outbox {
 public:
  explicit Outbox(bool targeted_allowed) : targeted_allowed_(targeted_allowed) {}

  /// Sends the payload to every process, including the sender itself via
  /// the self-loop link (paper, Section II). The payload is materialized
  /// (ref-counted) at most once here; the network fans the same shared
  /// object out to all N receivers copy-free, and re-broadcasting an
  /// already materialized PayloadRef shares it outright.
  void broadcast(PayloadRef payload) { entries_.push_back({std::nullopt, std::move(payload)}); }

  /// Byzantine-only: sends a payload to one specific destination. Allows
  /// a faulty process to equivocate by sending different content on each
  /// link. Throws std::logic_error if invoked by a correct process.
  void send_to(ProcessIndex dest, PayloadRef payload);

  struct Entry {
    std::optional<ProcessIndex> dest;  ///< nullopt = broadcast
    PayloadRef payload;
  };

  [[nodiscard]] const std::vector<Entry>& entries() const noexcept { return entries_; }
  [[nodiscard]] bool targeted_allowed() const noexcept { return targeted_allowed_; }

 private:
  bool targeted_allowed_;
  std::vector<Entry> entries_;
};

/// A process participating in the synchronous computation. Each round the
/// runner first calls on_send on every process, then delivers all messages
/// sent that round and calls on_receive. State updates belong in
/// on_receive so every process acts on the same global round boundary.
class ProcessBehavior {
 public:
  virtual ~ProcessBehavior() = default;

  ProcessBehavior() = default;
  ProcessBehavior(const ProcessBehavior&) = delete;
  ProcessBehavior& operator=(const ProcessBehavior&) = delete;

  /// Emits this round's messages.
  virtual void on_send(Round round, Outbox& out) = 0;

  /// Consumes this round's inbox. Deliveries are ordered by link label;
  /// the receiver never learns sender identities.
  virtual void on_receive(Round round, const Inbox& inbox) = 0;

  /// True once the process has completed its protocol. The runner stops
  /// when every correct process is done.
  [[nodiscard]] virtual bool done() const = 0;

  /// The new name this process decided, if any. Byzantine behaviors
  /// return nullopt.
  [[nodiscard]] virtual std::optional<Name> decision() const { return std::nullopt; }
};

}  // namespace byzrename::sim

#endif  // BYZRENAME_SIM_PROCESS_H
