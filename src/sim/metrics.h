#ifndef BYZRENAME_SIM_METRICS_H
#define BYZRENAME_SIM_METRICS_H

#include <algorithm>
#include <cstddef>
#include <vector>

namespace byzrename::sim {

/// Message/bit counters for one synchronous round. A broadcast counts as
/// N point-to-point messages, matching the paper's "all-to-all
/// communication" accounting in Sections IV-D and VI-B.
struct RoundMetrics {
  std::size_t messages = 0;
  std::size_t bits = 0;
  std::size_t correct_messages = 0;
  std::size_t correct_bits = 0;
};

/// Aggregated communication metrics for a whole run.
struct Metrics {
  std::vector<RoundMetrics> per_round;
  std::size_t max_message_bits = 0;          ///< largest single message (any sender)
  std::size_t max_correct_message_bits = 0;  ///< largest single message from a correct sender

  [[nodiscard]] std::size_t rounds() const noexcept { return per_round.size(); }

  [[nodiscard]] std::size_t total_messages() const noexcept {
    std::size_t sum = 0;
    for (const RoundMetrics& r : per_round) sum += r.messages;
    return sum;
  }

  [[nodiscard]] std::size_t total_bits() const noexcept {
    std::size_t sum = 0;
    for (const RoundMetrics& r : per_round) sum += r.bits;
    return sum;
  }

  [[nodiscard]] std::size_t total_correct_messages() const noexcept {
    std::size_t sum = 0;
    for (const RoundMetrics& r : per_round) sum += r.correct_messages;
    return sum;
  }

  [[nodiscard]] std::size_t total_correct_bits() const noexcept {
    std::size_t sum = 0;
    for (const RoundMetrics& r : per_round) sum += r.correct_bits;
    return sum;
  }
};

}  // namespace byzrename::sim

#endif  // BYZRENAME_SIM_METRICS_H
