#ifndef BYZRENAME_SIM_METRICS_H
#define BYZRENAME_SIM_METRICS_H

#include <algorithm>
#include <cstddef>
#include <vector>

namespace byzrename::sim {

/// Message/bit counters for one synchronous round. A broadcast counts as
/// N point-to-point messages, matching the paper's "all-to-all
/// communication" accounting in Sections IV-D and VI-B.
struct RoundMetrics {
  std::size_t messages = 0;
  std::size_t bits = 0;
  std::size_t correct_messages = 0;
  std::size_t correct_bits = 0;
  /// Targeted sends by Byzantine processes — the capability equivocation
  /// requires (correct processes may only broadcast).
  std::size_t equivocating_sends = 0;
  /// Model-violation counters (sim/fault.h): deliveries the injector
  /// dropped (link rule, partition cut, or crashed endpoint), extra
  /// copies it delivered, and deliveries it postponed to a later round.
  std::size_t injected_drops = 0;
  std::size_t injected_duplicates = 0;
  std::size_t injected_delays = 0;
  /// Forged-sender messages the impersonation adversary inserted and
  /// correct-process restarts triggered this round. Forgeries are NOT
  /// folded into messages/bits: those count what processes actually
  /// transmit, which the complexity auditor checks against the paper's
  /// budgets, and the impersonator is external to the system.
  std::size_t injected_forgeries = 0;
  std::size_t injected_restarts = 0;
  /// Largest single message charged in this round (any sender / correct
  /// senders only). Per-round so the bit-size trajectory of the voting
  /// phase is observable, not just the whole-run maximum.
  std::size_t max_message_bits = 0;
  std::size_t max_correct_message_bits = 0;
};

/// Aggregated communication metrics for a whole run. Totals are
/// maintained incrementally as rounds are recorded, so the total_*()
/// accessors are O(1) — benches call them inside sweep loops.
class Metrics {
 public:
  /// Records one finished round and folds it into the running totals.
  /// The only mutation path, so totals can never drift from per_round().
  void add_round(const RoundMetrics& round) {
    per_round_.push_back(round);
    totals_.messages += round.messages;
    totals_.bits += round.bits;
    totals_.correct_messages += round.correct_messages;
    totals_.correct_bits += round.correct_bits;
    totals_.equivocating_sends += round.equivocating_sends;
    totals_.injected_drops += round.injected_drops;
    totals_.injected_duplicates += round.injected_duplicates;
    totals_.injected_delays += round.injected_delays;
    totals_.injected_forgeries += round.injected_forgeries;
    totals_.injected_restarts += round.injected_restarts;
    // Max folds are idempotent with note_message_bits, so rounds built
    // either way (per-message notes or per-round maxima) agree.
    max_message_bits_ = std::max(max_message_bits_, round.max_message_bits);
    max_correct_message_bits_ =
        std::max(max_correct_message_bits_, round.max_correct_message_bits);
  }

  /// Tracks the largest single message seen on the wire.
  void note_message_bits(std::size_t bits, bool correct_sender) {
    max_message_bits_ = std::max(max_message_bits_, bits);
    if (correct_sender) {
      max_correct_message_bits_ = std::max(max_correct_message_bits_, bits);
    }
  }

  [[nodiscard]] const std::vector<RoundMetrics>& per_round() const noexcept { return per_round_; }
  [[nodiscard]] std::size_t rounds() const noexcept { return per_round_.size(); }

  [[nodiscard]] std::size_t total_messages() const noexcept { return totals_.messages; }
  [[nodiscard]] std::size_t total_bits() const noexcept { return totals_.bits; }
  [[nodiscard]] std::size_t total_correct_messages() const noexcept {
    return totals_.correct_messages;
  }
  [[nodiscard]] std::size_t total_correct_bits() const noexcept { return totals_.correct_bits; }
  [[nodiscard]] std::size_t total_equivocating_sends() const noexcept {
    return totals_.equivocating_sends;
  }
  [[nodiscard]] std::size_t total_injected_drops() const noexcept {
    return totals_.injected_drops;
  }
  [[nodiscard]] std::size_t total_injected_duplicates() const noexcept {
    return totals_.injected_duplicates;
  }
  [[nodiscard]] std::size_t total_injected_delays() const noexcept {
    return totals_.injected_delays;
  }
  [[nodiscard]] std::size_t total_injected_forgeries() const noexcept {
    return totals_.injected_forgeries;
  }
  [[nodiscard]] std::size_t total_injected_restarts() const noexcept {
    return totals_.injected_restarts;
  }

  /// Largest single message (any sender).
  [[nodiscard]] std::size_t max_message_bits() const noexcept { return max_message_bits_; }
  /// Largest single message from a correct sender.
  [[nodiscard]] std::size_t max_correct_message_bits() const noexcept {
    return max_correct_message_bits_;
  }

 private:
  std::vector<RoundMetrics> per_round_;
  RoundMetrics totals_;
  std::size_t max_message_bits_ = 0;
  std::size_t max_correct_message_bits_ = 0;
};

}  // namespace byzrename::sim

#endif  // BYZRENAME_SIM_METRICS_H
