#ifndef BYZRENAME_RBC_SYNC_RBC_H
#define BYZRENAME_RBC_SYNC_RBC_H

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "sim/process.h"
#include "sim/types.h"

namespace byzrename::rbc {

/// Synchronous single-sender reliable broadcast after Bracha & Toueg,
/// restricted to a fixed 4-round schedule (Send, Echo, Ready, Ready
/// amplification), tolerating t < N/3 Byzantine faults.
///
/// IMPORTANT MODELLING NOTE (the reason this substrate exists): reliable
/// broadcast assumes receivers can attribute messages to senders. In the
/// paper's renaming model link labels are anonymous, which is exactly why
/// the paper replaces RBC with the 4-step id selection scheme (Section
/// IV-A). This component therefore requires a network built with
/// scramble_links == false so that link label == sender index; it exists
/// to make that contrast measurable (see bench_t7 and the RBC tests).
///
/// Guarantees after round 4, for a designated sender s and value v:
///  - if s is correct, every correct process delivers v;
///  - if any correct process delivers a value, every correct process
///    delivers that same value (no two correct deliver differently).
class SyncRbcProcess final : public sim::ProcessBehavior {
 public:
  /// @param my_index this process's index (== the link label peers see).
  /// @param sender_index the designated broadcaster.
  /// @param value payload word to broadcast (used when my_index == sender_index).
  SyncRbcProcess(sim::SystemParams params, sim::ProcessIndex my_index,
                 sim::ProcessIndex sender_index, std::int64_t value);

  void on_send(sim::Round round, sim::Outbox& out) override;
  void on_receive(sim::Round round, const sim::Inbox& inbox) override;
  [[nodiscard]] bool done() const override { return round_ >= 4; }

  /// The delivered value, if delivery happened.
  [[nodiscard]] std::optional<std::int64_t> delivered() const noexcept { return delivered_; }

 private:
  sim::SystemParams params_;
  sim::ProcessIndex my_index_;
  sim::ProcessIndex sender_index_;
  std::int64_t value_;

  int round_ = 0;
  std::optional<std::int64_t> received_from_sender_;
  std::optional<std::int64_t> echo_value_;     ///< value this process echoes
  std::optional<std::int64_t> ready_value_;    ///< value this process sent Ready for
  std::map<std::int64_t, std::set<sim::LinkIndex>> echo_links_;
  std::map<std::int64_t, std::set<sim::LinkIndex>> ready_links_;
  std::optional<std::int64_t> delivered_;
};

}  // namespace byzrename::rbc

#endif  // BYZRENAME_RBC_SYNC_RBC_H
