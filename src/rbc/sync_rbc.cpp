#include "rbc/sync_rbc.h"

#include <stdexcept>

namespace byzrename::rbc {

namespace {

// WordMsg tags for the three message kinds.
constexpr std::int64_t kSendTag = 1;
constexpr std::int64_t kEchoTag = 2;
constexpr std::int64_t kReadyTag = 3;

}  // namespace

using sim::Delivery;
using sim::Inbox;
using sim::Outbox;
using sim::Round;
using sim::WordMsg;

SyncRbcProcess::SyncRbcProcess(sim::SystemParams params, sim::ProcessIndex my_index,
                               sim::ProcessIndex sender_index, std::int64_t value)
    : params_(params), my_index_(my_index), sender_index_(sender_index), value_(value) {
  if (params.n <= 3 * params.t) throw std::invalid_argument("SyncRbcProcess: requires N > 3t");
}

void SyncRbcProcess::on_send(Round round, Outbox& out) {
  switch (round) {
    case 1:
      if (my_index_ == sender_index_) out.broadcast(WordMsg{kSendTag, {value_}});
      break;
    case 2:
      if (received_from_sender_.has_value()) {
        echo_value_ = received_from_sender_;
        out.broadcast(WordMsg{kEchoTag, {*echo_value_}});
      }
      break;
    case 3:
      // Ready on an echo quorum, for at most one value: two quorums of
      // N-t share a correct process, so no correct process ever sees
      // quorums for two values.
      for (const auto& [value, links] : echo_links_) {
        if (static_cast<int>(links.size()) >= params_.n - params_.t) {
          ready_value_ = value;
          out.broadcast(WordMsg{kReadyTag, {value}});
          break;
        }
      }
      break;
    case 4:
      // Amplification: a weak quorum of Readys implies some correct
      // process saw an echo quorum, so it is safe to join.
      if (!ready_value_.has_value()) {
        for (const auto& [value, links] : ready_links_) {
          if (static_cast<int>(links.size()) >= params_.n - 2 * params_.t) {
            ready_value_ = value;
            out.broadcast(WordMsg{kReadyTag, {value}});
            break;
          }
        }
      }
      break;
    default:
      break;
  }
}

void SyncRbcProcess::on_receive(Round round, const Inbox& inbox) {
  round_ = round;
  for (const Delivery& d : inbox) {
    const auto* msg = std::get_if<WordMsg>(&*d.payload);
    if (msg == nullptr || msg->words.size() != 1) continue;
    const std::int64_t value = msg->words[0];
    switch (msg->tag) {
      case kSendTag:
        // Sender attribution: only believable on the sender's own link.
        // This is the step that is impossible with anonymous links.
        if (round == 1 && d.link == sender_index_ && !received_from_sender_.has_value()) {
          received_from_sender_ = value;
        }
        break;
      case kEchoTag:
        if (round == 2) echo_links_[value].insert(d.link);
        break;
      case kReadyTag:
        if (round == 3 || round == 4) ready_links_[value].insert(d.link);
        break;
      default:
        break;
    }
  }

  if (round == 4) {
    for (const auto& [value, links] : ready_links_) {
      if (static_cast<int>(links.size()) >= params_.n - params_.t) {
        delivered_ = value;
        break;
      }
    }
  }
}

}  // namespace byzrename::rbc
