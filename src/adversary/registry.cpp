#include "adversary/adversary.h"

#include <map>
#include <stdexcept>

#include "adversary/strategies/strategies.h"

namespace byzrename::adversary {

namespace {

const std::map<std::string, AdversaryFactory>& registry() {
  static const std::map<std::string, AdversaryFactory> instance = {
      {"silent", make_silent_team},
      {"mute", make_mute_team},
      {"crash", make_crash_team},
      {"random", make_random_lies_team},
      {"chaos", make_chaos_team},
      {"idflood", make_id_flood_team},
      {"asymflood", make_asym_flood_team},
      {"split", make_split_world_team},
      {"skew", make_rank_skew_team},
      {"invalid", make_invalid_votes_team},
      {"suppress", make_echo_suppress_team},
      {"hybrid", make_hybrid_team},
      {"orderbreak", make_order_break_team},
  };
  return instance;
}

}  // namespace

const AdversaryFactory& find_adversary(const std::string& name) {
  const auto& reg = registry();
  const auto it = reg.find(name);
  if (it == reg.end()) {
    throw std::out_of_range("unknown adversary strategy: " + name);
  }
  return it->second;
}

std::vector<std::string> adversary_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;
}

}  // namespace byzrename::adversary
