#ifndef BYZRENAME_ADVERSARY_ADVERSARY_H
#define BYZRENAME_ADVERSARY_ADVERSARY_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithm.h"
#include "core/params.h"
#include "sim/process.h"
#include "sim/types.h"

namespace byzrename::adversary {

/// Everything a full-information adversary may know when planning an
/// attack: the paper's fault model lets faulty processes collude with
/// complete knowledge of the system, so strategies receive the global
/// picture that correct processes never see.
struct AdversaryEnv {
  sim::SystemParams params;
  core::Algorithm algorithm = core::Algorithm::kOpRenaming;
  core::RenamingOptions options;

  /// Physical index and original id of every correct process. By harness
  /// convention correct processes occupy indices 0 .. n-f-1 in id order.
  std::vector<std::pair<sim::ProcessIndex, sim::Id>> correct;

  /// Physical indices of the faulty processes (n-f .. n-1) and the
  /// "natural" ids the harness allotted them to lie with.
  std::vector<sim::ProcessIndex> byz_indices;
  std::vector<sim::Id> byz_ids;

  std::uint64_t seed = 1;
};

/// Builds one behavior per faulty process (env.byz_indices.size() of
/// them, in index order).
using AdversaryFactory =
    std::function<std::vector<std::unique_ptr<sim::ProcessBehavior>>(const AdversaryEnv&)>;

/// Looks up a strategy by name. Throws std::out_of_range for unknown
/// names; known names are listed by adversary_names().
[[nodiscard]] const AdversaryFactory& find_adversary(const std::string& name);

/// All registered strategy names, sorted.
[[nodiscard]] std::vector<std::string> adversary_names();

/// A faulty process that sends nothing at all (equivalently: crashed
/// before the first round). The weakest adversary; every stronger
/// strategy must do at least this well in the benches.
[[nodiscard]] std::unique_ptr<sim::ProcessBehavior> make_silent();

}  // namespace byzrename::adversary

#endif  // BYZRENAME_ADVERSARY_ADVERSARY_H
