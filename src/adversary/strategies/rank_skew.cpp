#include "adversary/strategies/strategies.h"

#include "core/harness.h"
#include "core/op_renaming.h"
#include "core/rank_approx.h"
#include "numeric/rational.h"

namespace byzrename::adversary {

namespace {

using numeric::Rational;

/// Honest through id selection, then broadcasts votes displaced by a huge
/// uniform offset whose sign alternates per round. Uniform shifts keep
/// the delta spacing, so every vote passes isValid — the trim step of
/// approximate() is the only defense, and Lemma IV.8's containment claim
/// (outputs stay in the correct inputs' range) is exactly what this
/// strategy tries to break.
class RankSkewBehavior final : public sim::ProcessBehavior {
 public:
  RankSkewBehavior(const AdversaryEnv& env, sim::Id my_id)
      : inner_(std::make_unique<core::OpRenamingProcess>(env.params, my_id, env.options)) {}

  void on_send(sim::Round round, sim::Outbox& out) override {
    sim::Outbox inner_out(/*targeted_allowed=*/false);
    inner_->on_send(round, inner_out);
    if (round <= 4) {
      for (const sim::Outbox::Entry& entry : inner_out.entries()) out.broadcast(entry.payload);
      return;
    }
    const Rational shift(round % 2 == 0 ? 1'000'000 : -1'000'000);
    core::RankMap skewed;
    for (const auto& [id, rank] : inner_->ranks()) skewed.emplace(id, rank + shift);
    out.broadcast(core::encode_vote(skewed));
  }

  void on_receive(sim::Round round, const sim::Inbox& inbox) override {
    inner_->on_receive(round, inbox);
  }

  [[nodiscard]] bool done() const override { return true; }

 private:
  std::unique_ptr<core::OpRenamingProcess> inner_;
};

/// Scalar-AA flavor: broadcast an extreme value, alternating sign.
class ValueSkewBehavior final : public sim::ProcessBehavior {
 public:
  void on_send(sim::Round round, sim::Outbox& out) override {
    out.broadcast(sim::AAValueMsg{Rational(round % 2 == 0 ? 1'000'000'000 : -1'000'000'000)});
  }
  void on_receive(sim::Round, const sim::Inbox&) override {}
  [[nodiscard]] bool done() const override { return true; }
};

}  // namespace

std::vector<std::unique_ptr<sim::ProcessBehavior>> make_rank_skew_team(const AdversaryEnv& env) {
  std::vector<std::unique_ptr<sim::ProcessBehavior>> team;
  team.reserve(env.byz_indices.size());
  for (std::size_t i = 0; i < env.byz_indices.size(); ++i) {
    switch (env.algorithm) {
      case core::Algorithm::kOpRenaming:
      case core::Algorithm::kOpRenamingConstantTime:
        team.push_back(std::make_unique<RankSkewBehavior>(env, env.byz_ids[i]));
        break;
      case core::Algorithm::kScalarAA:
        team.push_back(std::make_unique<ValueSkewBehavior>());
        break;
      default:
        team.push_back(core::make_correct_behavior(env.algorithm, env.params, env.byz_ids[i],
                                                   env.options, env.byz_indices[i]));
        break;
    }
  }
  return team;
}

}  // namespace byzrename::adversary
