#include "adversary/strategies/strategies.h"

#include <algorithm>

namespace byzrename::adversary {

namespace {

/// Alg. 1 flavor: announces its own id to barely enough correct
/// processes and echoes selectively, so the id lands in the timely set of
/// some correct processes but only in the accepted set of others — the
/// widest initial rank discrepancy the selection phase permits (the
/// execution behind Lemma IV.7's bound).
class SuppressSelectionBehavior final : public sim::ProcessBehavior {
 public:
  SuppressSelectionBehavior(const AdversaryEnv& env, sim::Id my_id)
      : env_(env), my_id_(my_id) {}

  void on_send(sim::Round round, sim::Outbox& out) override {
    const auto& correct = env_.correct;
    const int n = env_.params.n;
    const int t = env_.params.t;
    switch (round) {
      case 1: {
        // Announce to exactly N-2t correct processes: enough that their
        // echoes alone can carry the id to the weak threshold, few
        // enough that nothing is guaranteed.
        const int receivers = std::min<int>(static_cast<int>(correct.size()), n - 2 * t);
        for (int c = 0; c < receivers; ++c) out.send_to(correct[static_cast<std::size_t>(c)].first, sim::IdMsg{my_id_});
        break;
      }
      case 2: {
        // Echo own id to half the correct processes only: combined with
        // the N-2t honest echoes, that half sees an echo quorum and
        // becomes Ready; the other half does not.
        for (std::size_t c = 0; c < correct.size() / 2; ++c) {
          out.send_to(correct[c].first, sim::EchoMsg{my_id_});
        }
        // Echo all correct ids honestly (they are unstoppable anyway).
        for (const auto& [index, id] : correct) out.broadcast(sim::EchoMsg{id});
        break;
      }
      case 3: {
        // Ready own id towards a third of the system; correct Readys
        // plus these leave some processes just above N-2t and others
        // just below N-t, maximizing timely/accepted asymmetry.
        for (std::size_t c = 0; c < correct.size() / 3; ++c) {
          out.send_to(correct[c].first, sim::ReadyMsg{my_id_});
        }
        for (const auto& [index, id] : correct) out.broadcast(sim::ReadyMsg{id});
        break;
      }
      default:
        break;  // step 4 and voting: silent
    }
  }

  void on_receive(sim::Round, const sim::Inbox&) override {}
  [[nodiscard]] bool done() const override { return true; }

 private:
  AdversaryEnv env_;
  sim::Id my_id_;
};

/// Alg. 4 flavor: announce the faulty id to only half of the correct
/// processes — so its echo counter stays below the min(counter, N-t)
/// clamp — then echo every faulty id to one half of the system and to
/// nobody else. Each faulty id's counter differs by f across the halves,
/// which is the execution that pushes the per-id name discrepancy toward
/// Lemma VI.1's 2t^2 bound.
class SuppressFastBehavior final : public sim::ProcessBehavior {
 public:
  SuppressFastBehavior(const AdversaryEnv& env, sim::Id my_id) : env_(env), my_id_(my_id) {}

  void on_send(sim::Round round, sim::Outbox& out) override {
    const std::size_t half = env_.correct.size() / 2;
    if (round == 1) {
      // Only the first half ever hears this faulty id directly; their
      // honest echoes keep its counter at m/2 << N-t everywhere.
      for (std::size_t c = 0; c < half; ++c) {
        out.send_to(env_.correct[c].first, sim::IdMsg{my_id_});
      }
      return;
    }
    if (round != 2) return;
    sim::MultiEchoMsg without_faulty;
    for (const auto& [index, id] : env_.correct) without_faulty.ids.push_back(id);
    sim::MultiEchoMsg with_faulty = without_faulty;
    for (const sim::Id id : env_.byz_ids) with_faulty.ids.push_back(id);
    for (std::size_t c = 0; c < env_.correct.size(); ++c) {
      out.send_to(env_.correct[c].first, c < half ? with_faulty : without_faulty);
    }
  }

  void on_receive(sim::Round, const sim::Inbox&) override {}
  [[nodiscard]] bool done() const override { return true; }

 private:
  AdversaryEnv env_;
  sim::Id my_id_;
};

}  // namespace

std::vector<std::unique_ptr<sim::ProcessBehavior>> make_echo_suppress_team(
    const AdversaryEnv& env) {
  std::vector<std::unique_ptr<sim::ProcessBehavior>> team;
  team.reserve(env.byz_indices.size());
  for (std::size_t i = 0; i < env.byz_indices.size(); ++i) {
    if (env.algorithm == core::Algorithm::kFastRenaming) {
      team.push_back(std::make_unique<SuppressFastBehavior>(env, env.byz_ids[i]));
    } else {
      team.push_back(std::make_unique<SuppressSelectionBehavior>(env, env.byz_ids[i]));
    }
  }
  return team;
}

}  // namespace byzrename::adversary
