#include "adversary/strategies/strategies.h"

#include <algorithm>

#include "core/op_renaming.h"
#include "core/rank_approx.h"
#include "numeric/rational.h"
#include "sim/rng.h"

namespace byzrename::adversary {

namespace {

using numeric::Rational;

/// Protocol-aware randomized adversary: unlike the blind `random` fuzzer
/// it keeps a consistent honest view (an inner correct process) and each
/// round, per receiver, randomly picks among behaviours that sit right at
/// the validation boundary — honest, minimally-compressed, stretched,
/// shifted (all pass isValid), sub-delta squeezed or hole-punched (must
/// be rejected), or silence. Sweeping seeds makes this a cheap
/// property-based search over mixed-strategy attacks.
class ChaosBehavior final : public sim::ProcessBehavior {
 public:
  ChaosBehavior(const AdversaryEnv& env, sim::Id my_id, sim::Rng rng)
      : env_(env),
        delta_(core::delta(env.params)),
        rng_(std::move(rng)),
        inner_(std::make_unique<core::OpRenamingProcess>(env.params, my_id, env.options)) {}

  void on_send(sim::Round round, sim::Outbox& out) override {
    sim::Outbox inner_out(/*targeted_allowed=*/false);
    inner_->on_send(round, inner_out);
    if (round <= 4) {
      // Selection phase: forward honestly, but drop each message toward
      // each receiver with small probability (random omission).
      for (const sim::Outbox::Entry& entry : inner_out.entries()) {
        for (const auto& [index, id] : env_.correct) {
          if (rng_.chance(0.1)) continue;
          out.send_to(index, entry.payload);
        }
      }
      return;
    }
    for (const auto& [index, id] : env_.correct) {
      switch (rng_.uniform(0, 6)) {
        case 0:
          break;  // silence
        case 1:
          out.send_to(index, core::encode_vote(inner_->ranks()));  // honest
          break;
        case 2:
          out.send_to(index, crafted(CompressToMinimum{}));
          break;
        case 3:
          out.send_to(index, crafted(Stretch{}));
          break;
        case 4:
          out.send_to(index, crafted(Shift{rng_.uniform(-1000, 1000)}));
          break;
        case 5:
          out.send_to(index, crafted(Squeeze{}));  // invalid: sub-delta spacing
          break;
        default:
          out.send_to(index, crafted(PunchHole{}));  // invalid: drops an id
          break;
      }
    }
  }

  void on_receive(sim::Round round, const sim::Inbox& inbox) override {
    inner_->on_receive(round, inbox);
  }

  [[nodiscard]] bool done() const override { return true; }

 private:
  struct CompressToMinimum {};
  struct Stretch {};
  struct Shift {
    std::int64_t amount;
  };
  struct Squeeze {};
  struct PunchHole {};

  template <typename Kind>
  [[nodiscard]] sim::RanksMsg crafted(Kind kind) {
    core::RankMap vote;
    std::int64_t position = 0;
    for (const auto& [id, rank] : inner_->ranks()) {
      ++position;
      if constexpr (std::is_same_v<Kind, CompressToMinimum>) {
        vote.emplace(id, Rational(position) * delta_);
      } else if constexpr (std::is_same_v<Kind, Stretch>) {
        vote.emplace(id, Rational(3 * position) * delta_);
      } else if constexpr (std::is_same_v<Kind, Shift>) {
        vote.emplace(id, rank + Rational(kind.amount));
      } else if constexpr (std::is_same_v<Kind, Squeeze>) {
        vote.emplace(id, Rational(position) * delta_ / Rational(2));
      } else {
        static_assert(std::is_same_v<Kind, PunchHole>);
        if (position != 1) vote.emplace(id, rank);
      }
    }
    return core::encode_vote(vote);
  }

  AdversaryEnv env_;
  Rational delta_;
  sim::Rng rng_;
  std::unique_ptr<core::OpRenamingProcess> inner_;
};

}  // namespace

std::vector<std::unique_ptr<sim::ProcessBehavior>> make_chaos_team(const AdversaryEnv& env) {
  sim::Rng rng(env.seed * 6364136223846793005ull + 1442695040888963407ull);
  std::vector<std::unique_ptr<sim::ProcessBehavior>> team;
  team.reserve(env.byz_indices.size());
  for (std::size_t i = 0; i < env.byz_indices.size(); ++i) {
    switch (env.algorithm) {
      case core::Algorithm::kOpRenaming:
      case core::Algorithm::kOpRenamingConstantTime:
        team.push_back(std::make_unique<ChaosBehavior>(env, env.byz_ids[i], rng.fork()));
        break;
      default:
        team.push_back(make_silent());
        break;
    }
  }
  return team;
}

}  // namespace byzrename::adversary
