#include "adversary/strategies/strategies.h"

#include <utility>

#include "core/harness.h"
#include "core/op_renaming.h"
#include "core/rank_approx.h"
#include "numeric/rational.h"

namespace byzrename::adversary {

namespace {

using numeric::Rational;

/// Honest through id selection, equivocating in the voting phase: half
/// the correct processes get a compressed rank array (every gap squeezed
/// to exactly delta), the other half a doubly-stretched one. Both pass
/// isValid everywhere, so this is the strongest disagreement a faulty
/// process can sow without being filtered.
class SplitWorldBehavior final : public sim::ProcessBehavior {
 public:
  SplitWorldBehavior(const AdversaryEnv& env, sim::Id my_id)
      : env_(env),
        delta_(core::delta(env.params)),
        inner_(std::make_unique<core::OpRenamingProcess>(env.params, my_id, env.options)) {}

  void on_send(sim::Round round, sim::Outbox& out) override {
    sim::Outbox inner_out(/*targeted_allowed=*/false);
    inner_->on_send(round, inner_out);
    if (round <= 4) {
      for (const sim::Outbox::Entry& entry : inner_out.entries()) out.broadcast(entry.payload);
      return;
    }

    // Craft the two faces from the inner process's honest accepted set.
    core::RankMap compressed;
    core::RankMap stretched;
    std::int64_t position = 0;
    for (const auto& [id, rank] : inner_->ranks()) {
      ++position;
      compressed.emplace(id, Rational(position) * delta_);
      stretched.emplace(id, Rational(2 * position) * delta_);
    }
    const sim::RanksMsg low = core::encode_vote(compressed);
    const sim::RanksMsg high = core::encode_vote(stretched);
    const std::size_t half = env_.correct.size() / 2;
    for (std::size_t c = 0; c < env_.correct.size(); ++c) {
      out.send_to(env_.correct[c].first, c < half ? low : high);
    }
  }

  void on_receive(sim::Round round, const sim::Inbox& inbox) override {
    inner_->on_receive(round, inbox);
  }

  [[nodiscard]] bool done() const override { return true; }

 private:
  AdversaryEnv env_;
  Rational delta_;
  std::unique_ptr<core::OpRenamingProcess> inner_;
};

/// Scalar-AA flavor: report a far-low value to one half and a far-high
/// value to the other.
class SplitValueBehavior final : public sim::ProcessBehavior {
 public:
  explicit SplitValueBehavior(const AdversaryEnv& env) : env_(env) {}

  void on_send(sim::Round, sim::Outbox& out) override {
    const std::size_t half = env_.correct.size() / 2;
    for (std::size_t c = 0; c < env_.correct.size(); ++c) {
      const Rational value(c < half ? -1'000'000 : 1'000'000);
      out.send_to(env_.correct[c].first, sim::AAValueMsg{value});
    }
  }
  void on_receive(sim::Round, const sim::Inbox&) override {}
  [[nodiscard]] bool done() const override { return true; }

 private:
  AdversaryEnv env_;
};

}  // namespace

std::vector<std::unique_ptr<sim::ProcessBehavior>> make_split_world_team(const AdversaryEnv& env) {
  std::vector<std::unique_ptr<sim::ProcessBehavior>> team;
  team.reserve(env.byz_indices.size());
  for (std::size_t i = 0; i < env.byz_indices.size(); ++i) {
    switch (env.algorithm) {
      case core::Algorithm::kOpRenaming:
      case core::Algorithm::kOpRenamingConstantTime:
        team.push_back(std::make_unique<SplitWorldBehavior>(env, env.byz_ids[i]));
        break;
      case core::Algorithm::kScalarAA:
        team.push_back(std::make_unique<SplitValueBehavior>(env));
        break;
      default:
        // No voting phase to split; participate honestly, which is the
        // adversary's best remaining (non-)move for these protocols.
        team.push_back(core::make_correct_behavior(env.algorithm, env.params, env.byz_ids[i],
                                                   env.options, env.byz_indices[i]));
        break;
    }
  }
  return team;
}

}  // namespace byzrename::adversary
