#include "adversary/strategies/strategies.h"

#include "numeric/rational.h"
#include "sim/rng.h"

namespace byzrename::adversary {

namespace {

using numeric::Rational;

/// Sprays random, syntactically plausible protocol messages at random
/// destinations each round. Not a calibrated attack — a fuzzer that makes
/// sure no code path assumes well-behaved peers.
class RandomLiesBehavior final : public sim::ProcessBehavior {
 public:
  RandomLiesBehavior(const AdversaryEnv& env, sim::Rng rng)
      : n_(env.params.n), rng_(std::move(rng)) {
    for (const auto& [index, id] : env.correct) id_pool_.push_back(id);
    for (const sim::Id id : env.byz_ids) id_pool_.push_back(id);
    // Some ids nobody owns, for fake-id announcements.
    for (int i = 0; i < env.params.n; ++i) id_pool_.push_back(rng_.uniform(1, 1'000'000'000'000));
  }

  void on_send(sim::Round, sim::Outbox& out) override {
    const int messages = static_cast<int>(rng_.uniform(1, 2 * n_));
    for (int m = 0; m < messages; ++m) {
      const auto dest = static_cast<sim::ProcessIndex>(rng_.uniform(0, n_ - 1));
      out.send_to(dest, random_payload());
    }
  }

  void on_receive(sim::Round, const sim::Inbox&) override {}
  [[nodiscard]] bool done() const override { return true; }

 private:
  [[nodiscard]] sim::Id random_id() {
    return id_pool_[static_cast<std::size_t>(
        rng_.uniform(0, static_cast<std::int64_t>(id_pool_.size()) - 1))];
  }

  [[nodiscard]] sim::Payload random_payload() {
    switch (rng_.uniform(0, 5)) {
      case 0:
        return sim::IdMsg{random_id()};
      case 1:
        return sim::EchoMsg{random_id()};
      case 2:
        return sim::ReadyMsg{random_id()};
      case 3: {
        sim::RanksMsg msg;
        const int entries = static_cast<int>(rng_.uniform(0, n_));
        for (int e = 0; e < entries; ++e) {
          msg.entries.push_back(
              {random_id(), Rational::of(rng_.uniform(-1000, 1000), rng_.uniform(1, 7))});
        }
        return msg;
      }
      case 4: {
        sim::MultiEchoMsg msg;
        const int entries = static_cast<int>(rng_.uniform(0, n_));
        for (int e = 0; e < entries; ++e) msg.ids.push_back(random_id());
        return msg;
      }
      default: {
        sim::WordMsg msg{rng_.uniform(0, 3000), {}};
        const int words = static_cast<int>(rng_.uniform(0, 6));
        for (int w = 0; w < words; ++w) msg.words.push_back(rng_.uniform(-100, 100));
        return msg;
      }
    }
  }

  int n_;
  sim::Rng rng_;
  std::vector<sim::Id> id_pool_;
};

}  // namespace

std::vector<std::unique_ptr<sim::ProcessBehavior>> make_random_lies_team(const AdversaryEnv& env) {
  sim::Rng rng(env.seed * 2654435761ull + 13);
  std::vector<std::unique_ptr<sim::ProcessBehavior>> team;
  team.reserve(env.byz_indices.size());
  for (std::size_t i = 0; i < env.byz_indices.size(); ++i) {
    team.push_back(std::make_unique<RandomLiesBehavior>(env, rng.fork()));
  }
  return team;
}

}  // namespace byzrename::adversary
