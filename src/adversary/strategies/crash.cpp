#include "adversary/strategies/strategies.h"

#include "core/harness.h"

namespace byzrename::adversary {

namespace {

/// Runs the honest protocol until a chosen round; in that round forwards
/// its outgoing broadcasts to only a prefix of the processes (a crash in
/// the middle of the broadcast loop), afterwards stays silent.
class CrashBehavior final : public sim::ProcessBehavior {
 public:
  CrashBehavior(std::unique_ptr<sim::ProcessBehavior> inner, sim::Round crash_round,
                int partial_deliveries, int n)
      : inner_(std::move(inner)),
        crash_round_(crash_round),
        partial_deliveries_(partial_deliveries),
        n_(n) {}

  void on_send(sim::Round round, sim::Outbox& out) override {
    if (round > crash_round_) return;  // crashed
    sim::Outbox inner_out(/*targeted_allowed=*/false);
    inner_->on_send(round, inner_out);
    const bool crashing = round == crash_round_;
    for (const sim::Outbox::Entry& entry : inner_out.entries()) {
      const int limit = crashing ? partial_deliveries_ : n_;
      for (int dest = 0; dest < limit; ++dest) out.send_to(dest, entry.payload);
    }
  }

  void on_receive(sim::Round round, const sim::Inbox& inbox) override {
    if (round >= crash_round_) return;
    inner_->on_receive(round, inbox);
  }

  [[nodiscard]] bool done() const override { return true; }

 private:
  std::unique_ptr<sim::ProcessBehavior> inner_;
  sim::Round crash_round_;
  int partial_deliveries_;
  int n_;
};

}  // namespace

std::vector<std::unique_ptr<sim::ProcessBehavior>> make_crash_team(const AdversaryEnv& env) {
  const int total = core::expected_steps(env.algorithm, env.params, env.options);
  std::vector<std::unique_ptr<sim::ProcessBehavior>> team;
  team.reserve(env.byz_indices.size());
  for (std::size_t i = 0; i < env.byz_indices.size(); ++i) {
    // Stagger crash rounds and partial-broadcast cuts across the team so
    // one run exercises crashes in every protocol phase.
    const auto crash_round = static_cast<sim::Round>(1 + static_cast<int>(i) % total);
    const int partial = static_cast<int>(i * 3 + 1) % env.params.n;
    auto inner = core::make_correct_behavior(env.algorithm, env.params, env.byz_ids[i],
                                             env.options, env.byz_indices[i]);
    team.push_back(
        std::make_unique<CrashBehavior>(std::move(inner), crash_round, partial, env.params.n));
  }
  return team;
}

}  // namespace byzrename::adversary
