#ifndef BYZRENAME_ADVERSARY_STRATEGIES_STRATEGIES_H
#define BYZRENAME_ADVERSARY_STRATEGIES_STRATEGIES_H

#include "adversary/adversary.h"

namespace byzrename::adversary {

// One factory per strategy; registry.cpp maps names onto these. Each
// returns env.byz_indices.size() behaviors, in index order.

/// Sends nothing at all (crash before round 1).
std::vector<std::unique_ptr<sim::ProcessBehavior>> make_silent_team(const AdversaryEnv& env);

/// Participates honestly in the protocol's input phase (id announcement
/// and selection), then goes silent. The canonical weakest *participating*
/// adversary: runs with it are the baseline that validation-focused
/// strategies ("invalid") must be observationally equivalent to.
std::vector<std::unique_ptr<sim::ProcessBehavior>> make_mute_team(const AdversaryEnv& env);

/// Behaves correctly, then crashes mid-broadcast at a staggered round:
/// the classic crash-fault adversary, expressed as a degenerate Byzantine
/// strategy. Drives the crash-model baseline and f < t robustness tests.
std::vector<std::unique_ptr<sim::ProcessBehavior>> make_crash_team(const AdversaryEnv& env);

/// Sprays syntactically plausible but random protocol messages at random
/// subsets of processes every round.
std::vector<std::unique_ptr<sim::ProcessBehavior>> make_random_lies_team(const AdversaryEnv& env);

/// Colluding id injection calibrated to saturate Lemma IV.3: every fake
/// id is announced to exactly the number of correct processes whose
/// echoes, combined with the faulty ones, reach the N-t threshold. With
/// f == t this achieves |accepted| = N + floor(t^2/(N-2t)) exactly.
/// Against Alg. 4 it floods per-receiver-distinct fakes instead.
std::vector<std::unique_ptr<sim::ProcessBehavior>> make_id_flood_team(const AdversaryEnv& env);

/// Honest through id selection, then equivocates in every voting step:
/// one half of the correct processes receives a minimally-spaced
/// (compressed) rank array, the other half a doubly-stretched one — both
/// pass isValid, maximizing the disagreement the approximation must burn
/// down (stress for Lemmas IV.8/IV.9).
std::vector<std::unique_ptr<sim::ProcessBehavior>> make_split_world_team(const AdversaryEnv& env);

/// Honest through id selection, then broadcasts votes shifted by a huge
/// uniform offset (alternating sign per round): still valid, but extreme
/// — the trim step must neutralize it (stress for Lemma IV.8's range
/// containment). Against scalar AA it broadcasts extreme values.
std::vector<std::unique_ptr<sim::ProcessBehavior>> make_rank_skew_team(const AdversaryEnv& env);

/// Honest through id selection, then sends only malformed votes (missing
/// timely ids, sub-delta spacing, duplicate entries, oversized
/// encodings, wrong message types). Every one must be rejected; the run
/// must look exactly like the silent adversary's.
std::vector<std::unique_ptr<sim::ProcessBehavior>> make_invalid_votes_team(const AdversaryEnv& env);

/// Calibrated asymmetric flood against Alg. 1: injects the maximum
/// number of fake ids and steers the Echo/Ready waves so every fake is
/// accepted by exactly the favored half of the correct processes —
/// achieving Lemma IV.7's initial-rank discrepancy bound with equality.
/// The hardest test of the voting phase's convergence budget.
std::vector<std::unique_ptr<sim::ProcessBehavior>> make_asym_flood_team(const AdversaryEnv& env);

/// The composed worst case for Alg. 1: suppress-style id-selection
/// asymmetry (different correct processes start with different initial
/// ranks) followed by split-world vote equivocation. Drives the Delta_r
/// convergence traces of bench_f1. Falls back to echo suppression for
/// protocols without a voting phase.
std::vector<std::unique_ptr<sim::ProcessBehavior>> make_hybrid_team(const AdversaryEnv& env);

/// The attack isValid exists to stop: selection asymmetry plus
/// gap-collapsing votes (two adjacent ids pushed onto the same rank).
/// With validation on, provably harmless; with the bench_a2 ablation's
/// validation off, it destroys the delta-separation invariant.
std::vector<std::unique_ptr<sim::ProcessBehavior>> make_order_break_team(const AdversaryEnv& env);

/// Announces its id to only part of the system and echoes selectively,
/// creating maximal asymmetry between correct processes' timely/accepted
/// views (stress for Lemmas IV.1/IV.7); against Alg. 4, selective
/// MultiEchoes drive the name discrepancy toward Lemma VI.1's 2t^2.
std::vector<std::unique_ptr<sim::ProcessBehavior>> make_echo_suppress_team(const AdversaryEnv& env);

/// Protocol-aware randomized mixture: per receiver per round, randomly
/// honest / boundary-valid (compressed, stretched, shifted) / boundary-
/// invalid (squeezed, hole-punched) / silent, plus random omissions in
/// the selection phase. Sweeping seeds gives property-based coverage of
/// mixed strategies no hand-written attack enumerates.
std::vector<std::unique_ptr<sim::ProcessBehavior>> make_chaos_team(const AdversaryEnv& env);

namespace detail {

/// The calibrated asymmetric-flood selection plan (see asym_flood.cpp),
/// reusable by composed attacks (orderbreak) that need provable initial
/// asymmetry before their own voting-phase mischief.
struct AsymSelectionPlan {
  std::vector<sim::Id> fake_ids;
  std::vector<std::vector<std::pair<sim::ProcessIndex, sim::Id>>> step1_sends;
  std::vector<sim::ProcessIndex> seeds;
  std::vector<sim::ProcessIndex> bridges;
  std::vector<sim::ProcessIndex> favored;
  std::vector<sim::Id> correct_ids;
};

[[nodiscard]] std::shared_ptr<const AsymSelectionPlan> make_asym_selection_plan(
    const AdversaryEnv& env);

/// Emits team member @p member's sends for selection rounds 1-4.
void asym_selection_send(const AsymSelectionPlan& plan, int member, sim::Round round,
                         sim::Outbox& out);

}  // namespace detail

}  // namespace byzrename::adversary

#endif  // BYZRENAME_ADVERSARY_STRATEGIES_STRATEGIES_H
