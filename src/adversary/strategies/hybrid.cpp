#include "adversary/strategies/strategies.h"

#include <algorithm>

#include "core/op_renaming.h"
#include "core/rank_approx.h"
#include "numeric/rational.h"

namespace byzrename::adversary {

namespace {

using numeric::Rational;

/// The composed worst case for Alg. 1's convergence built entirely from
/// *valid* messages: the calibrated asymmetric-flood selection (Lemma
/// IV.7 met with equality — selection-honest adversaries provably cannot
/// diverge initial ranks at all), followed by split-world vote
/// equivocation that passes isValid at every receiver: the compressed
/// face pulls the favored half down, the stretched face pushes the
/// disfavored half up, slowing the approximation and steering where the
/// converged values land. This is the strongest pressure on Lemma IV.9's
/// iteration budget that the validation layer permits (bench_a1 probes
/// it next to the vote-silent asymflood).
///
/// An inner OpRenamingProcess consumes the same inbox a correct process
/// would, giving the attacker a consistent accepted/timely view from
/// which to craft votes that validate everywhere.
class HybridBehavior final : public sim::ProcessBehavior {
 public:
  HybridBehavior(const AdversaryEnv& env,
                 std::shared_ptr<const detail::AsymSelectionPlan> plan, int member,
                 sim::Id my_id)
      : env_(env),
        plan_(std::move(plan)),
        member_(member),
        delta_(core::delta(env.params)),
        inner_(std::make_unique<core::OpRenamingProcess>(env.params, my_id, env.options)) {}

  void on_send(sim::Round round, sim::Outbox& out) override {
    // Keep the inner state machine's send-side bookkeeping in step.
    sim::Outbox discard(/*targeted_allowed=*/false);
    inner_->on_send(round, discard);
    if (round <= 4) {
      detail::asym_selection_send(*plan_, member_, round, out);
      return;
    }

    // Voting: the two *group views* themselves, cross-sent. The inner
    // process holds the disfavored (low) view; the favored group's view
    // sits F*delta higher (F = number of asymmetric fakes). Sending the
    // HIGH face to the disfavored half and the LOW face to the favored
    // half keeps every faulty vote inside the correct range per id — so
    // trimming cannot discard it — while pulling each group toward the
    // other side as slowly as validity allows. Both faces keep exact
    // delta spacing, so both pass isValid at every receiver.
    const Rational fake_offset =
        Rational(static_cast<std::int64_t>(plan_->fake_ids.size())) * delta_;
    core::RankMap low_face;
    core::RankMap high_face;
    for (const auto& [id, rank] : inner_->ranks()) {
      low_face.emplace(id, rank);
      high_face.emplace(id, rank + fake_offset);
    }
    const sim::RanksMsg low = core::encode_vote(low_face);
    const sim::RanksMsg high = core::encode_vote(high_face);
    const std::size_t half = env_.correct.size() / 2;
    for (std::size_t c = 0; c < env_.correct.size(); ++c) {
      // Indices < half are the disfavored group (asym plan convention).
      out.send_to(env_.correct[c].first, c < half ? high : low);
    }
  }

  void on_receive(sim::Round round, const sim::Inbox& inbox) override {
    inner_->on_receive(round, inbox);
  }

  [[nodiscard]] bool done() const override { return true; }

 private:
  AdversaryEnv env_;
  std::shared_ptr<const detail::AsymSelectionPlan> plan_;
  int member_;
  Rational delta_;
  std::unique_ptr<core::OpRenamingProcess> inner_;
};

}  // namespace

std::vector<std::unique_ptr<sim::ProcessBehavior>> make_hybrid_team(const AdversaryEnv& env) {
  std::vector<std::unique_ptr<sim::ProcessBehavior>> team;
  team.reserve(env.byz_indices.size());
  switch (env.algorithm) {
    case core::Algorithm::kOpRenaming:
    case core::Algorithm::kOpRenamingConstantTime: {
      auto plan = detail::make_asym_selection_plan(env);
      for (std::size_t i = 0; i < env.byz_indices.size(); ++i) {
        team.push_back(
            std::make_unique<HybridBehavior>(env, plan, static_cast<int>(i), env.byz_ids[i]));
      }
      return team;
    }
    default:
      // Fall back to the strongest single-phase attack per protocol.
      return make_echo_suppress_team(env);
  }
}

}  // namespace byzrename::adversary
