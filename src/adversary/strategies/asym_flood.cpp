#include "adversary/strategies/strategies.h"

#include <algorithm>
#include <memory>
#include <set>

namespace byzrename::adversary {

// Calibrated *asymmetric* id flood against Alg. 1 — the execution that
// witnesses Lemma IV.7's worst case.
//
// Like the symmetric flood, it injects F = floor(f*m/(N-t-f)) fake ids;
// unlike it, every fake ends up in the accepted set of only the
// "favored" upper half of the correct processes:
//
//   step 1  each fake announced to exactly quota = N-t-f correct
//           processes (their echoes are the honest raw material);
//   step 2  the team's echoes are targeted at s = N-2t-1 "seed"
//           processes only, so exactly the seeds reach the N-t echo
//           threshold and say Ready in step 3 — one fewer than the N-2t
//           amplification quorum, so the Ready wave cannot spread on its
//           own;
//   step 3  the team Readys toward a = N-t-s-f "bridge" processes,
//           lifting them to the weak quorum so they amplify in step 4;
//   step 4  the team Readys toward the favored half, whose cumulative
//           count reaches exactly N-t; everyone else stays one short.
//
// All fake ids sort below every correct id, so favored processes rank
// every correct id F positions higher than disfavored ones: the initial
// discrepancy is exactly (t + floor(t^2/(N-2t))) * delta when f == t —
// Lemma IV.7 met with equality. The voting phase then has to burn the
// whole allowance down, making this the natural worst case for the
// convergence benches (F1, A1) and the base of the orderbreak attack.

namespace detail {

std::shared_ptr<const AsymSelectionPlan> make_asym_selection_plan(const AdversaryEnv& env) {
  auto plan = std::make_shared<AsymSelectionPlan>();
  const int n = env.params.n;
  const int t = env.params.t;
  const int f = static_cast<int>(env.byz_indices.size());
  const int m = static_cast<int>(env.correct.size());
  const int quota = std::max(1, n - t - f);
  const std::size_t fake_count = static_cast<std::size_t>((f * m) / quota);

  // Fake ids strictly below every correct id, so every fake displaces the
  // rank of every correct id at the processes that accept it.
  sim::Id lowest = env.correct.empty() ? 1'000'000 : env.correct.front().second;
  for (const auto& [index, id] : env.correct) lowest = std::min(lowest, id);
  for (const sim::Id id : env.byz_ids) lowest = std::min(lowest, id);
  for (std::size_t k = 0; k < fake_count; ++k) {
    plan->fake_ids.push_back(lowest - 1 - static_cast<sim::Id>(k));
  }

  plan->step1_sends.resize(static_cast<std::size_t>(f));
  for (int b = 0; b < f; ++b) {
    for (int c = 0; c < m; ++c) {
      const std::size_t slot = static_cast<std::size_t>(b) * static_cast<std::size_t>(m) +
                               static_cast<std::size_t>(c);
      const std::size_t fake = slot / static_cast<std::size_t>(quota);
      if (fake >= plan->fake_ids.size()) continue;
      plan->step1_sends[static_cast<std::size_t>(b)].emplace_back(
          env.correct[static_cast<std::size_t>(c)].first, plan->fake_ids[fake]);
    }
  }

  const int seeds = std::clamp(n - 2 * t - 1, 0, m);
  const int bridges = std::clamp(n - t - seeds - f, 0, m - seeds);
  for (int c = 0; c < seeds; ++c) {
    plan->seeds.push_back(env.correct[static_cast<std::size_t>(c)].first);
  }
  for (int c = seeds; c < seeds + bridges; ++c) {
    plan->bridges.push_back(env.correct[static_cast<std::size_t>(c)].first);
  }
  for (int c = m / 2; c < m; ++c) {
    plan->favored.push_back(env.correct[static_cast<std::size_t>(c)].first);
  }
  for (const auto& [index, id] : env.correct) plan->correct_ids.push_back(id);
  return plan;
}

void asym_selection_send(const AsymSelectionPlan& plan, int member, sim::Round round,
                         sim::Outbox& out) {
  switch (round) {
    case 1:
      for (const auto& [dest, fake] : plan.step1_sends[static_cast<std::size_t>(member)]) {
        out.send_to(dest, sim::IdMsg{fake});
      }
      break;
    case 2:
      for (const sim::Id fake : plan.fake_ids) {
        for (const sim::ProcessIndex dest : plan.seeds) out.send_to(dest, sim::EchoMsg{fake});
      }
      for (const sim::Id id : plan.correct_ids) out.broadcast(sim::EchoMsg{id});
      break;
    case 3:
      for (const sim::Id fake : plan.fake_ids) {
        for (const sim::ProcessIndex dest : plan.bridges) out.send_to(dest, sim::ReadyMsg{fake});
      }
      for (const sim::Id id : plan.correct_ids) out.broadcast(sim::ReadyMsg{id});
      break;
    case 4:
      for (const sim::Id fake : plan.fake_ids) {
        for (const sim::ProcessIndex dest : plan.favored) out.send_to(dest, sim::ReadyMsg{fake});
      }
      break;
    default:
      break;
  }
}

}  // namespace detail

namespace {

class AsymFloodBehavior final : public sim::ProcessBehavior {
 public:
  AsymFloodBehavior(std::shared_ptr<const detail::AsymSelectionPlan> plan, int member)
      : plan_(std::move(plan)), member_(member) {}

  void on_send(sim::Round round, sim::Outbox& out) override {
    detail::asym_selection_send(*plan_, member_, round, out);
    // Voting phase (rounds > 4): silent; the asymmetry is planted.
  }

  void on_receive(sim::Round, const sim::Inbox&) override {}
  [[nodiscard]] bool done() const override { return true; }

 private:
  std::shared_ptr<const detail::AsymSelectionPlan> plan_;
  int member_;
};

/// Alg. 4 flavor — the execution that saturates Lemma VI.1's 2t^2 bound.
///
/// Each team member claims a fresh low id and announces it to the favored
/// half only; its echoes by that half are broadcast, so every counter
/// sits uniformly at m/2 — far below the min(counter, N-t) clamp, which
/// is what lets the team's own selective echoes matter. In step 2 the
/// favored half additionally receives, inside each faulty MultiEcho, the
/// f claimed ids (in-timely there, so free of the overlap budget) and t
/// never-announced "ghost" ids (exactly the overlap slack); t correct
/// ids are dropped to stay within the N-id cap, which is harmless since
/// correct counters clamp at N-t regardless. Favored processes therefore
/// count f extra echoes on each of the f claimed ids and f echoes on
/// each of t ghosts that the others never see:
///     Delta = f^2 + t*f = 2t^2   when f == t,
/// met with equality, while Lemma VI.2's N-t >= 2t^2+1 gap keeps order
/// preservation intact by exactly one name.
class AsymFastBehavior final : public sim::ProcessBehavior {
 public:
  AsymFastBehavior(const AdversaryEnv& env, int member) : env_(env), member_(member) {
    sim::Id lowest = env.correct.empty() ? 1'000'000 : env.correct.front().second;
    for (const auto& [index, id] : env.correct) lowest = std::min(lowest, id);
    for (const sim::Id id : env.byz_ids) lowest = std::min(lowest, id);
    const int f = static_cast<int>(env.byz_indices.size());
    for (int i = 0; i < f; ++i) claimed_.push_back(lowest - 1 - i);
    for (int i = 0; i < env.params.t; ++i) ghosts_.push_back(lowest - 1 - f - i);
    const std::size_t m = env.correct.size();
    for (std::size_t c = m / 2; c < m; ++c) favored_.push_back(env.correct[c].first);
    for (std::size_t c = 0; c < m / 2; ++c) disfavored_.push_back(env.correct[c].first);
  }

  void on_send(sim::Round round, sim::Outbox& out) override {
    if (round == 1) {
      for (const sim::ProcessIndex dest : favored_) {
        out.send_to(dest, sim::IdMsg{claimed_[static_cast<std::size_t>(member_)]});
      }
      return;
    }
    if (round != 2) return;

    // Favored half: (m - t) correct ids + f claimed + t ghosts == N ids,
    // overlap (m - t) + f == N - t exactly.
    sim::MultiEchoMsg favored_echo;
    const int keep = static_cast<int>(env_.correct.size()) - env_.params.t;
    for (int c = 0; c < keep; ++c) {
      favored_echo.ids.push_back(env_.correct[static_cast<std::size_t>(c)].second);
    }
    for (const sim::Id id : claimed_) favored_echo.ids.push_back(id);
    for (const sim::Id id : ghosts_) favored_echo.ids.push_back(id);

    // Disfavored half: all correct ids, nothing else.
    sim::MultiEchoMsg plain_echo;
    for (const auto& [index, id] : env_.correct) plain_echo.ids.push_back(id);

    for (const sim::ProcessIndex dest : favored_) out.send_to(dest, favored_echo);
    for (const sim::ProcessIndex dest : disfavored_) out.send_to(dest, plain_echo);
  }

  void on_receive(sim::Round, const sim::Inbox&) override {}
  [[nodiscard]] bool done() const override { return true; }

 private:
  AdversaryEnv env_;
  int member_;
  std::vector<sim::Id> claimed_;
  std::vector<sim::Id> ghosts_;
  std::vector<sim::ProcessIndex> favored_;
  std::vector<sim::ProcessIndex> disfavored_;
};

}  // namespace

std::vector<std::unique_ptr<sim::ProcessBehavior>> make_asym_flood_team(const AdversaryEnv& env) {
  std::vector<std::unique_ptr<sim::ProcessBehavior>> team;
  team.reserve(env.byz_indices.size());
  if (env.algorithm == core::Algorithm::kFastRenaming) {
    for (std::size_t i = 0; i < env.byz_indices.size(); ++i) {
      team.push_back(std::make_unique<AsymFastBehavior>(env, static_cast<int>(i)));
    }
    return team;
  }
  auto plan = detail::make_asym_selection_plan(env);
  for (std::size_t i = 0; i < env.byz_indices.size(); ++i) {
    team.push_back(std::make_unique<AsymFloodBehavior>(plan, static_cast<int>(i)));
  }
  return team;
}

}  // namespace byzrename::adversary
