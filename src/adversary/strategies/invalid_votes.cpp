#include "adversary/strategies/strategies.h"

#include "core/harness.h"
#include "core/op_renaming.h"
#include "core/rank_approx.h"
#include "numeric/bigint.h"
#include "numeric/rational.h"

namespace byzrename::adversary {

namespace {

using numeric::BigInt;
using numeric::Rational;

/// Honest through id selection, then sends exclusively malformed votes —
/// a different malformation per destination, cycling through every
/// rejection path of decode_vote/is_valid_ranks. If validation is
/// airtight, a run with this adversary is observationally identical to a
/// silent one (the tests assert exactly that, plus the rejection counts).
class InvalidVotesBehavior final : public sim::ProcessBehavior {
 public:
  InvalidVotesBehavior(const AdversaryEnv& env, sim::Id my_id)
      : env_(env),
        delta_(core::delta(env.params)),
        inner_(std::make_unique<core::OpRenamingProcess>(env.params, my_id, env.options)) {}

  void on_send(sim::Round round, sim::Outbox& out) override {
    sim::Outbox inner_out(/*targeted_allowed=*/false);
    inner_->on_send(round, inner_out);
    if (round <= 4) {
      for (const sim::Outbox::Entry& entry : inner_out.entries()) out.broadcast(entry.payload);
      return;
    }
    int kind = round;  // vary the malformation across rounds and receivers
    for (const auto& [index, id] : env_.correct) {
      out.send_to(index, malformed_vote(kind++));
    }
  }

  void on_receive(sim::Round round, const sim::Inbox& inbox) override {
    inner_->on_receive(round, inbox);
  }

  [[nodiscard]] bool done() const override { return true; }

 private:
  [[nodiscard]] sim::Payload malformed_vote(int kind) const {
    const core::RankMap& honest = inner_->ranks();
    switch (kind % 6) {
      case 0: {  // missing a timely id: drop the smallest entry
        sim::RanksMsg msg = core::encode_vote(honest);
        if (!msg.entries.empty()) msg.entries.erase(msg.entries.begin());
        return msg;
      }
      case 1: {  // sub-delta spacing: compress everything onto one point
        sim::RanksMsg msg = core::encode_vote(honest);
        for (sim::RankEntry& entry : msg.entries) entry.rank = Rational(1);
        return msg;
      }
      case 2: {  // duplicate / unsorted entries
        sim::RanksMsg msg = core::encode_vote(honest);
        if (!msg.entries.empty()) msg.entries.push_back(msg.entries.front());
        return msg;
      }
      case 3: {  // denominator inflation beyond the wire budget
        sim::RanksMsg msg = core::encode_vote(honest);
        Rational huge(BigInt(1), BigInt(1) << 8192);
        for (sim::RankEntry& entry : msg.entries) entry.rank = entry.rank + huge;
        return msg;
      }
      case 4: {  // entry-count spam
        sim::RanksMsg msg = core::encode_vote(honest);
        sim::Id next = msg.entries.empty() ? 1 : msg.entries.back().id;
        Rational rank = msg.entries.empty() ? Rational(1) : msg.entries.back().rank;
        for (int i = 0; i < 3 * env_.params.n; ++i) {
          next += 1;
          rank += delta_;
          msg.entries.push_back({next, rank});
        }
        return msg;
      }
      default:  // wrong message type for the voting phase
        return sim::EchoMsg{42};
    }
  }

  AdversaryEnv env_;
  Rational delta_;
  std::unique_ptr<core::OpRenamingProcess> inner_;
};

/// Alg. 4 flavor: step 1 honest, step 2 sends only MultiEchoes that must
/// fail is_valid_echo (oversized or insufficient overlap).
class InvalidEchoBehavior final : public sim::ProcessBehavior {
 public:
  InvalidEchoBehavior(const AdversaryEnv& env, sim::Id my_id) : env_(env), my_id_(my_id) {}

  void on_send(sim::Round round, sim::Outbox& out) override {
    if (round == 1) {
      out.broadcast(sim::IdMsg{my_id_});
      return;
    }
    if (round != 2) return;
    int kind = 0;
    for (const auto& [index, id] : env_.correct) {
      sim::MultiEchoMsg echo;
      if (kind++ % 2 == 0) {
        // Oversized: more than N ids.
        for (int i = 0; i <= env_.params.n; ++i) echo.ids.push_back(1'000'000 + i);
      } else {
        // Insufficient overlap with any correct timely set.
        for (int i = 0; i < env_.params.n - 1; ++i) echo.ids.push_back(2'000'000 + i);
      }
      out.send_to(index, std::move(echo));
    }
  }

  void on_receive(sim::Round, const sim::Inbox&) override {}
  [[nodiscard]] bool done() const override { return true; }

 private:
  AdversaryEnv env_;
  sim::Id my_id_;
};

}  // namespace

std::vector<std::unique_ptr<sim::ProcessBehavior>> make_invalid_votes_team(
    const AdversaryEnv& env) {
  std::vector<std::unique_ptr<sim::ProcessBehavior>> team;
  team.reserve(env.byz_indices.size());
  for (std::size_t i = 0; i < env.byz_indices.size(); ++i) {
    switch (env.algorithm) {
      case core::Algorithm::kOpRenaming:
      case core::Algorithm::kOpRenamingConstantTime:
        team.push_back(std::make_unique<InvalidVotesBehavior>(env, env.byz_ids[i]));
        break;
      case core::Algorithm::kFastRenaming:
        team.push_back(std::make_unique<InvalidEchoBehavior>(env, env.byz_ids[i]));
        break;
      default:
        team.push_back(make_silent());
        break;
    }
  }
  return team;
}

}  // namespace byzrename::adversary
