#include "adversary/strategies/forgery.h"

#include <algorithm>
#include <array>
#include <cstddef>

namespace byzrename::adversary {

namespace {

constexpr std::array<const char*, 3> kForgeryStrategies = {"ghost", "ranklie", "replay"};

/// Rounds the op-family protocols spend in id selection (ID, Echo, two
/// Ready waves); forged selection traffic only makes sense inside them.
int selection_rounds(core::Algorithm algorithm) {
  switch (algorithm) {
    case core::Algorithm::kOpRenaming:
    case core::Algorithm::kOpRenamingConstantTime:
    case core::Algorithm::kBitRenaming:
      return 4;
    default:
      return 1;
  }
}

}  // namespace

std::vector<std::string> forgery_strategy_names() {
  return {kForgeryStrategies.begin(), kForgeryStrategies.end()};
}

bool has_forgery_strategy(const std::string& name) {
  return std::find(kForgeryStrategies.begin(), kForgeryStrategies.end(), name) !=
         kForgeryStrategies.end();
}

RegistryForgerySource::RegistryForgerySource(const AdversaryEnv& env)
    : algorithm_(env.algorithm) {
  id_of_index_.assign(static_cast<std::size_t>(env.params.n), 0);
  std::vector<sim::Id> all_ids;
  for (const auto& [index, id] : env.correct) {
    id_of_index_.at(static_cast<std::size_t>(index)) = id;
    sorted_ids_.push_back(id);
    all_ids.push_back(id);
  }
  for (std::size_t i = 0; i < env.byz_indices.size(); ++i) {
    id_of_index_.at(static_cast<std::size_t>(env.byz_indices[i])) = env.byz_ids[i];
    all_ids.push_back(env.byz_ids[i]);
  }
  std::sort(sorted_ids_.begin(), sorted_ids_.end());
  std::sort(all_ids.begin(), all_ids.end());
  // The phantom slots into the median gap of the real id space — the
  // order boundary where a wrongly accepted id displaces the most
  // relative ranks — falling back past the maximum when the gap has no
  // fresh integer.
  if (all_ids.size() >= 2) {
    const std::size_t mid = all_ids.size() / 2;
    const sim::Id lo = all_ids[mid - 1];
    const sim::Id hi = all_ids[mid];
    ghost_id_ = (hi - lo > 1) ? lo + (hi - lo) / 2 : all_ids.back() + 1;
  } else {
    ghost_id_ = all_ids.empty() ? 1 : all_ids.back() + 1;
  }
}

sim::PayloadRef RegistryForgerySource::forge(sim::Round round, sim::ProcessIndex spoofed_sender,
                                             sim::ProcessIndex receiver,
                                             const std::string& strategy,
                                             std::uint64_t entropy) {
  (void)receiver;
  const int selection = selection_rounds(algorithm_);
  if (strategy == "ghost") {
    // A phantom process walks the selection protocol: announce, echo
    // itself, stay Ready forever. Stable across rounds and receivers so
    // the phantom looks like one persistent (forged) participant.
    if (round == 1) return sim::IdMsg{ghost_id_};
    if (round == 2) return sim::EchoMsg{ghost_id_};
    return sim::ReadyMsg{ghost_id_};
  }
  if (strategy == "replay") {
    // Consistent impersonation: say exactly what the spoofed sender
    // would say about its own id. A correct protocol tolerates this
    // trivially — the margin measurement's control strategy.
    const auto index = static_cast<std::size_t>(spoofed_sender);
    const sim::Id id = index < id_of_index_.size() ? id_of_index_[index] : 0;
    if (round == 1) return sim::IdMsg{id};
    if (round == 2) return sim::EchoMsg{id};
    return sim::ReadyMsg{id};
  }
  if (strategy == "ranklie") {
    // Quiet through selection, then vote the exact reversal of the
    // correct ranking in the spoofed sender's name. The entropy bit
    // jitters the reversal's scale so consecutive slots are not
    // byte-identical votes.
    if (round <= selection) return {};
    sim::RanksMsg msg;
    msg.entries.reserve(sorted_ids_.size());
    const auto m = static_cast<std::int64_t>(sorted_ids_.size());
    const std::int64_t stretch = 1 + static_cast<std::int64_t>(entropy & 1);
    for (std::size_t i = 0; i < sorted_ids_.size(); ++i) {
      const std::int64_t reversed = m - static_cast<std::int64_t>(i);
      msg.entries.push_back({sorted_ids_[i], numeric::Rational(reversed * stretch)});
    }
    return msg;
  }
  return {};  // unknown strategy: decline every slot (harness validates up front)
}

}  // namespace byzrename::adversary
