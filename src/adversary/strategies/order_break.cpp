#include "adversary/strategies/strategies.h"

#include <algorithm>

#include "core/op_renaming.h"
#include "core/rank_approx.h"
#include "numeric/rational.h"

namespace byzrename::adversary {

namespace {

using numeric::Rational;

/// The attack the isValid filter (Alg. 2) exists to stop.
///
/// Selection phase: the calibrated asymmetric flood, so the favored half
/// of the correct processes starts with every correct rank F positions
/// above the disfavored half — correct processes now hold *overlapping
/// rank intervals*, which is precisely the situation the paper warns
/// makes raw Byzantine AA converge non-order-preservingly (Section I).
///
/// Voting phase: gap-collapsing votes. The two middle correct ids a < b
/// both get the value midway between the groups' views of a and b; that
/// point lies inside both ids' correct ranges, so trimming cannot remove
/// it, and each round it drags rank(a) up and rank(b) down. The votes
/// violate the delta-spacing rule, so with validation on they are all
/// rejected (Corollary IV.6 survives); with bench_a2's validation-off
/// ablation they land, and the delta-separation invariant collapses.
class OrderBreakBehavior final : public sim::ProcessBehavior {
 public:
  OrderBreakBehavior(const AdversaryEnv& env,
                     std::shared_ptr<const detail::AsymSelectionPlan> plan, int member,
                     sim::Id my_id)
      : env_(env),
        plan_(std::move(plan)),
        member_(member),
        delta_(core::delta(env.params)),
        inner_(std::make_unique<core::OpRenamingProcess>(env.params, my_id, env.options)) {}

  void on_send(sim::Round round, sim::Outbox& out) override {
    sim::Outbox discard(/*targeted_allowed=*/false);
    inner_->on_send(round, discard);
    if (round <= 4) {
      detail::asym_selection_send(*plan_, member_, round, out);
      return;
    }

    core::RankMap vote = inner_->ranks();
    const std::size_t m = env_.correct.size();
    if (m >= 2) {
      const sim::Id a = env_.correct[m / 2 - 1].second;
      const sim::Id b = env_.correct[m / 2].second;
      const auto it_a = vote.find(a);
      const auto it_b = vote.find(b);
      if (it_a != vote.end() && it_b != vote.end()) {
        // The inner process holds the disfavored (low) view; the favored
        // group sits F*delta higher, halving each round. Aim midway
        // between the two groups' midpoints of [a, b] so the collapsing
        // value stays inside both ids' correct ranges.
        Rational group_spread =
            Rational(static_cast<std::int64_t>(plan_->fake_ids.size())) * delta_;
        for (sim::Round r = 5; r <= round; ++r) group_spread = group_spread / Rational(2);
        const Rational target = (it_a->second + it_b->second + group_spread) / Rational(2);
        it_a->second = target;
        it_b->second = target;
      }
    }
    out.broadcast(core::encode_vote(vote));
  }

  void on_receive(sim::Round round, const sim::Inbox& inbox) override {
    inner_->on_receive(round, inbox);
  }

  [[nodiscard]] bool done() const override { return true; }

 private:
  AdversaryEnv env_;
  std::shared_ptr<const detail::AsymSelectionPlan> plan_;
  int member_;
  Rational delta_;
  std::unique_ptr<core::OpRenamingProcess> inner_;
};

}  // namespace

std::vector<std::unique_ptr<sim::ProcessBehavior>> make_order_break_team(const AdversaryEnv& env) {
  std::vector<std::unique_ptr<sim::ProcessBehavior>> team;
  team.reserve(env.byz_indices.size());
  auto plan = detail::make_asym_selection_plan(env);
  for (std::size_t i = 0; i < env.byz_indices.size(); ++i) {
    switch (env.algorithm) {
      case core::Algorithm::kOpRenaming:
      case core::Algorithm::kOpRenamingConstantTime:
        team.push_back(
            std::make_unique<OrderBreakBehavior>(env, plan, static_cast<int>(i), env.byz_ids[i]));
        break;
      default:
        team.push_back(make_silent());
        break;
    }
  }
  return team;
}

}  // namespace byzrename::adversary
