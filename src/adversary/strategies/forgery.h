#ifndef BYZRENAME_ADVERSARY_STRATEGIES_FORGERY_H
#define BYZRENAME_ADVERSARY_STRATEGIES_FORGERY_H

#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "sim/network.h"

namespace byzrename::adversary {

/// Forgery strategies for the impersonation adversary (ForgeRule in
/// sim/fault.h; Okun, arXiv:1007.1086). Unlike the Byzantine strategies
/// above, these do not control any process: they only choose the payload
/// of externally injected forged-sender messages. Every strategy is a
/// pure function of its inputs, so forged runs stay order-independent.
///
///   ghost    a stable phantom process at an order boundary of the real
///            id space announces itself and pushes its id through the
///            Echo/Ready waves — the canonical "insert a fake
///            participant" impersonation attack
///   replay   re-announces the spoofed sender's REAL id — consistent
///            impersonation that a correct protocol must tolerate
///            trivially (the real sender broadcasts the same)
///   ranklie  once the voting phase starts, votes the reversal of the
///            correct ranking in the spoofed sender's name — the
///            strongest order attack expressible without equivocation
///
/// All registered strategy names, sorted.
[[nodiscard]] std::vector<std::string> forgery_strategy_names();

/// True if @p name is a registered forgery strategy. The harness
/// validates every ForgeRule's strategy up front with this.
[[nodiscard]] bool has_forgery_strategy(const std::string& name);

/// The registry-backed payload supplier the harness attaches to the
/// network when the fault plan contains forge rules. Stateless after
/// construction: forge() is a pure function of its arguments and the
/// environment captured here.
class RegistryForgerySource final : public sim::ForgerySource {
 public:
  explicit RegistryForgerySource(const AdversaryEnv& env);

  [[nodiscard]] sim::PayloadRef forge(sim::Round round, sim::ProcessIndex spoofed_sender,
                                      sim::ProcessIndex receiver, const std::string& strategy,
                                      std::uint64_t entropy) override;

 private:
  core::Algorithm algorithm_;
  /// Original id of every physical index (correct and Byzantine), so a
  /// replay forgery can speak with the spoofed sender's real identity.
  std::vector<sim::Id> id_of_index_;
  /// The ghost phantom's id: the midpoint of the median gap of the real
  /// id space (an order boundary), guaranteed fresh.
  sim::Id ghost_id_ = 0;
  /// Correct ids sorted ascending; basis of the ranklie reversal.
  std::vector<sim::Id> sorted_ids_;
};

}  // namespace byzrename::adversary

#endif  // BYZRENAME_ADVERSARY_STRATEGIES_FORGERY_H
