#include "adversary/strategies/strategies.h"

#include "core/harness.h"

namespace byzrename::adversary {

namespace {

class SilentBehavior final : public sim::ProcessBehavior {
 public:
  void on_send(sim::Round, sim::Outbox&) override {}
  void on_receive(sim::Round, const sim::Inbox&) override {}
  [[nodiscard]] bool done() const override { return true; }
};

/// Rounds this protocol spends collecting inputs; the mute adversary
/// participates through them and then stops talking.
int input_phase_rounds(core::Algorithm algorithm) {
  switch (algorithm) {
    case core::Algorithm::kOpRenaming:
    case core::Algorithm::kOpRenamingConstantTime:
    case core::Algorithm::kBitRenaming:
      return 4;
    default:
      return 1;
  }
}

class MuteBehavior final : public sim::ProcessBehavior {
 public:
  MuteBehavior(std::unique_ptr<sim::ProcessBehavior> inner, int speaking_rounds)
      : inner_(std::move(inner)), speaking_rounds_(speaking_rounds) {}

  void on_send(sim::Round round, sim::Outbox& out) override {
    if (round > speaking_rounds_) return;
    sim::Outbox inner_out(/*targeted_allowed=*/false);
    inner_->on_send(round, inner_out);
    for (const sim::Outbox::Entry& entry : inner_out.entries()) out.broadcast(entry.payload);
  }
  void on_receive(sim::Round round, const sim::Inbox& inbox) override {
    inner_->on_receive(round, inbox);
  }
  [[nodiscard]] bool done() const override { return true; }

 private:
  std::unique_ptr<sim::ProcessBehavior> inner_;
  int speaking_rounds_;
};

}  // namespace

std::vector<std::unique_ptr<sim::ProcessBehavior>> make_mute_team(const AdversaryEnv& env) {
  std::vector<std::unique_ptr<sim::ProcessBehavior>> team;
  team.reserve(env.byz_indices.size());
  for (std::size_t i = 0; i < env.byz_indices.size(); ++i) {
    auto inner = core::make_correct_behavior(env.algorithm, env.params, env.byz_ids[i],
                                             env.options, env.byz_indices[i]);
    team.push_back(
        std::make_unique<MuteBehavior>(std::move(inner), input_phase_rounds(env.algorithm)));
  }
  return team;
}

std::unique_ptr<sim::ProcessBehavior> make_silent() { return std::make_unique<SilentBehavior>(); }

std::vector<std::unique_ptr<sim::ProcessBehavior>> make_silent_team(const AdversaryEnv& env) {
  std::vector<std::unique_ptr<sim::ProcessBehavior>> team;
  team.reserve(env.byz_indices.size());
  for (std::size_t i = 0; i < env.byz_indices.size(); ++i) team.push_back(make_silent());
  return team;
}

}  // namespace byzrename::adversary
