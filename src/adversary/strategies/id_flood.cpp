#include "adversary/strategies/strategies.h"

#include <algorithm>
#include <memory>
#include <set>

namespace byzrename::adversary {

namespace {

/// The collusion plan shared by the whole flooding team.
struct FloodPlan {
  /// Fake ids to inject, interleaved among the correct ids so that the
  /// extra names also stress order preservation.
  std::vector<sim::Id> fake_ids;
  /// step1_sends[b] = per-team-member list of (destination, fake id).
  std::vector<std::vector<std::pair<sim::ProcessIndex, sim::Id>>> step1_sends;
  /// Everything the team echoes/readies in steps 2-4.
  std::vector<sim::Id> boost_ids;
};

/// Picks `count` ids interleaved with (and distinct from) the correct
/// ids, clustered around the median so fake names land mid-range.
std::vector<sim::Id> pick_fake_ids(const AdversaryEnv& env, std::size_t count) {
  std::set<sim::Id> taken;
  for (const auto& [index, id] : env.correct) taken.insert(id);
  for (const sim::Id id : env.byz_ids) taken.insert(id);

  std::vector<sim::Id> fakes;
  sim::Id candidate =
      env.correct.empty() ? 1 : env.correct[env.correct.size() / 2].second + 1;
  while (fakes.size() < count) {
    if (!taken.contains(candidate)) {
      fakes.push_back(candidate);
      taken.insert(candidate);
    }
    ++candidate;
  }
  return fakes;
}

/// Flood plan for Alg. 1's id selection: each fake id is announced to
/// exactly `quota` correct processes, where quota is the smallest number
/// of correct echoes that, together with the f faulty echoes, reaches the
/// N-t acceptance threshold. This is the execution that witnesses the
/// tightness of Lemma IV.3.
FloodPlan plan_for_selection(const AdversaryEnv& env) {
  FloodPlan plan;
  const int n = env.params.n;
  const int t = env.params.t;
  const int f = static_cast<int>(env.byz_indices.size());
  const int m = static_cast<int>(env.correct.size());
  const int quota = std::max(1, n - t - f);  // correct step-1 receivers per fake id
  const std::size_t fake_count = static_cast<std::size_t>((f * m) / quota);

  plan.fake_ids = pick_fake_ids(env, fake_count);
  plan.step1_sends.resize(static_cast<std::size_t>(f));
  for (int b = 0; b < f; ++b) {
    for (int c = 0; c < m; ++c) {
      const std::size_t slot = static_cast<std::size_t>(b) * static_cast<std::size_t>(m) +
                               static_cast<std::size_t>(c);
      const std::size_t fake = slot / static_cast<std::size_t>(quota);
      if (fake >= plan.fake_ids.size()) continue;
      plan.step1_sends[static_cast<std::size_t>(b)].emplace_back(env.correct[static_cast<std::size_t>(c)].first,
                                                                 plan.fake_ids[fake]);
    }
  }
  plan.boost_ids = plan.fake_ids;
  for (const auto& [index, id] : env.correct) plan.boost_ids.push_back(id);
  return plan;
}

/// Flood plan for Alg. 4: every (member, receiver) pair gets its own
/// fresh fake id — Alg. 4 has no filtering step, so each one lands in
/// exactly one correct process's timely set and inflates counters
/// asymmetrically (stress for Lemma VI.1 and the N^2 namespace).
FloodPlan plan_for_fast(const AdversaryEnv& env) {
  FloodPlan plan;
  const int f = static_cast<int>(env.byz_indices.size());
  const int m = static_cast<int>(env.correct.size());
  plan.fake_ids = pick_fake_ids(env, static_cast<std::size_t>(f) * static_cast<std::size_t>(m));
  plan.step1_sends.resize(static_cast<std::size_t>(f));
  std::size_t next = 0;
  for (int b = 0; b < f; ++b) {
    for (int c = 0; c < m; ++c) {
      plan.step1_sends[static_cast<std::size_t>(b)].emplace_back(
          env.correct[static_cast<std::size_t>(c)].first, plan.fake_ids[next++]);
    }
  }
  return plan;
}

class IdFloodBehavior final : public sim::ProcessBehavior {
 public:
  IdFloodBehavior(const AdversaryEnv& env, std::shared_ptr<const FloodPlan> plan, int member)
      : env_(env), plan_(std::move(plan)), member_(member) {}

  void on_send(sim::Round round, sim::Outbox& out) override {
    const auto& my_sends = plan_->step1_sends[static_cast<std::size_t>(member_)];
    if (env_.algorithm == core::Algorithm::kFastRenaming) {
      if (round == 1) {
        for (const auto& [dest, fake] : my_sends) out.send_to(dest, sim::IdMsg{fake});
      } else if (round == 2) {
        // Per-receiver MultiEcho: all correct ids (passes the overlap
        // check) plus every fake id any team member planted at that
        // receiver (boosting exactly the ids the receiver believes in).
        for (const auto& [index, id] : env_.correct) {
          sim::MultiEchoMsg echo;
          for (const auto& [peer_index, peer_id] : env_.correct) echo.ids.push_back(peer_id);
          for (const auto& member_sends : plan_->step1_sends) {
            for (const auto& [dest, fake] : member_sends) {
              if (dest == index) echo.ids.push_back(fake);
            }
          }
          if (static_cast<int>(echo.ids.size()) > env_.params.n) {
            echo.ids.resize(static_cast<std::size_t>(env_.params.n));
          }
          out.send_to(index, std::move(echo));
        }
      }
      return;
    }

    // Alg. 1 grammar.
    switch (round) {
      case 1:
        for (const auto& [dest, fake] : my_sends) out.send_to(dest, sim::IdMsg{fake});
        break;
      case 2:
        for (const sim::Id id : plan_->boost_ids) out.broadcast(sim::EchoMsg{id});
        break;
      case 3:
      case 4:
        for (const sim::Id id : plan_->boost_ids) out.broadcast(sim::ReadyMsg{id});
        break;
      default:
        break;  // voting phase: silent — the flood already did its damage
    }
  }

  void on_receive(sim::Round, const sim::Inbox&) override {}
  [[nodiscard]] bool done() const override { return true; }

 private:
  AdversaryEnv env_;
  std::shared_ptr<const FloodPlan> plan_;
  int member_;
};

}  // namespace

std::vector<std::unique_ptr<sim::ProcessBehavior>> make_id_flood_team(const AdversaryEnv& env) {
  auto plan = std::make_shared<const FloodPlan>(env.algorithm == core::Algorithm::kFastRenaming
                                                    ? plan_for_fast(env)
                                                    : plan_for_selection(env));
  std::vector<std::unique_ptr<sim::ProcessBehavior>> team;
  team.reserve(env.byz_indices.size());
  for (std::size_t i = 0; i < env.byz_indices.size(); ++i) {
    team.push_back(std::make_unique<IdFloodBehavior>(env, plan, static_cast<int>(i)));
  }
  return team;
}

}  // namespace byzrename::adversary
