#ifndef BYZRENAME_TRANSLATE_CRASH_TO_BYZANTINE_H
#define BYZRENAME_TRANSLATE_CRASH_TO_BYZANTINE_H

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "sim/process.h"
#include "sim/types.h"

namespace byzrename::translate {

/// Crash-to-Byzantine translation layer in the lineage of Bazzi-Neiger
/// and Neiger-Toueg — the generic technique the paper's introduction
/// weighs (and rejects) as a way to Byzantine-harden crash-tolerant
/// renaming ([15] built on exactly this idea).
///
/// Every simulated round of the wrapped crash-tolerant protocol costs
/// two real rounds:
///   cast round  — the wrapped process's round-r messages go out, each
///                 codec-encoded inside a WrappedCastMsg;
///   echo round  — every process re-broadcasts each cast it received,
///                 attributed to its sender (WrappedEchoMsg). A cast is
///                 delivered to the wrapped protocol only with N-t
///                 identical echoes from distinct processes.
///
/// Effect: a Byzantine sender that equivocates gets, per message, at
/// most one version delivered anywhere (two versions would each need
/// N-2t correct echoers, impossible for N > 3t), and a version delivered
/// to some but not all correct processes mimics a crash mid-broadcast —
/// Byzantine behaviour is reduced to (repeated) omission behaviour.
///
/// LIMITATIONS, deliberately preserved because they are the paper's
/// argument (measured by bench_t8):
///  - requires sender-authenticated links (scramble_links == false): the
///    echo attributes casts to senders, which the paper's anonymous
///    model forbids — §I's second objection;
///  - doubles the step count and multiplies message complexity by ~N
///    (every cast is re-broadcast by everyone) — §I's first objection;
///  - a Byzantine sender can produce *repeated* partial deliveries
///    (omission, not clean crash): full translations pay yet more
///    machinery (history echoing) to close this; the wrapped protocol
///    here must tolerate omissions, as AA-style protocols do.
class TranslatedProcess final : public sim::ProcessBehavior {
 public:
  /// @param inner the crash-tolerant behavior to harden.
  /// @param inner_steps how many simulated rounds the inner protocol
  ///        runs (the translation runs 2x that many real rounds).
  TranslatedProcess(sim::SystemParams params, std::unique_ptr<sim::ProcessBehavior> inner,
                    int inner_steps);

  void on_send(sim::Round round, sim::Outbox& out) override;
  void on_receive(sim::Round round, const sim::Inbox& inbox) override;
  [[nodiscard]] bool done() const override;
  [[nodiscard]] std::optional<sim::Name> decision() const override { return inner_->decision(); }

  /// Real steps needed for @p inner_steps simulated ones.
  [[nodiscard]] static int real_steps(int inner_steps) noexcept { return 2 * inner_steps; }

  /// Casts dropped for failing the echo quorum, for tests and benches.
  [[nodiscard]] long undelivered_casts() const noexcept { return undelivered_casts_; }

 private:
  /// A cast identity: (sender index, encoded payload).
  using CastKey = std::pair<sim::ProcessIndex, std::vector<std::uint8_t>>;

  sim::SystemParams params_;
  std::unique_ptr<sim::ProcessBehavior> inner_;
  int inner_steps_;

  /// Casts heard this simulated round, keyed by sender (one multiset
  /// entry per distinct blob; duplicate blobs from one sender collapse).
  std::set<CastKey> heard_casts_;
  /// Echo counts per cast over distinct echoing links.
  std::map<CastKey, std::set<sim::LinkIndex>> echo_links_;

  long undelivered_casts_ = 0;
};

}  // namespace byzrename::translate

#endif  // BYZRENAME_TRANSLATE_CRASH_TO_BYZANTINE_H
