#include "translate/crash_to_byzantine.h"

#include <algorithm>

#include "sim/codec.h"

namespace byzrename::translate {

using sim::Delivery;
using sim::Inbox;
using sim::Outbox;
using sim::Round;
using sim::WrappedCastMsg;
using sim::WrappedEchoMsg;

TranslatedProcess::TranslatedProcess(sim::SystemParams params,
                                     std::unique_ptr<sim::ProcessBehavior> inner, int inner_steps)
    : params_(params), inner_(std::move(inner)), inner_steps_(inner_steps) {}

bool TranslatedProcess::done() const { return inner_->done(); }

void TranslatedProcess::on_send(Round round, Outbox& out) {
  const Round sim_round = (round + 1) / 2;
  const bool is_cast_round = round % 2 == 1;
  if (sim_round > inner_steps_) return;

  if (is_cast_round) {
    sim::Outbox inner_out(/*targeted_allowed=*/false);
    inner_->on_send(sim_round, inner_out);
    for (const Outbox::Entry& entry : inner_out.entries()) {
      out.broadcast(WrappedCastMsg{sim_round, sim::encode(*entry.payload)});
    }
    return;
  }

  // Echo round: re-broadcast every cast heard, attributed to its sender.
  for (const CastKey& cast : heard_casts_) {
    out.broadcast(WrappedEchoMsg{cast.first, sim_round, cast.second});
  }
}

void TranslatedProcess::on_receive(Round round, const Inbox& inbox) {
  const Round sim_round = (round + 1) / 2;
  const bool is_cast_round = round % 2 == 1;
  if (sim_round > inner_steps_) return;

  if (is_cast_round) {
    heard_casts_.clear();
    echo_links_.clear();
    for (const Delivery& d : inbox) {
      const auto* cast = std::get_if<WrappedCastMsg>(&*d.payload);
      if (cast == nullptr || cast->sim_round != sim_round) continue;
      // Authenticated model: the arrival link IS the sender index.
      heard_casts_.insert({d.link, cast->blob});
    }
    return;
  }

  for (const Delivery& d : inbox) {
    const auto* echo = std::get_if<WrappedEchoMsg>(&*d.payload);
    if (echo == nullptr || echo->sim_round != sim_round) continue;
    if (echo->sender < 0 || echo->sender >= params_.n) continue;
    echo_links_[{static_cast<sim::ProcessIndex>(echo->sender), echo->blob}].insert(d.link);
  }

  // Deliver every cast with an echo quorum to the wrapped protocol, in
  // deterministic (sender, blob) order; the simulated link label is the
  // sender index, stable across simulated rounds as the model requires.
  Inbox simulated;
  for (const auto& [cast, links] : echo_links_) {
    if (static_cast<int>(links.size()) < params_.n - params_.t) {
      ++undelivered_casts_;
      continue;
    }
    std::optional<sim::Payload> payload = sim::decode(cast.second);
    if (!payload.has_value()) {
      ++undelivered_casts_;  // garbage blob with a quorum: faulty sender
      continue;
    }
    simulated.push_back({cast.first, std::move(*payload)});
  }
  inner_->on_receive(sim_round, simulated);
}

}  // namespace byzrename::translate
