#ifndef BYZRENAME_BASELINES_CONSENSUS_RENAMING_H
#define BYZRENAME_BASELINES_CONSENSUS_RENAMING_H

#include <optional>
#include <vector>

#include "consensus/phase_king.h"
#include "sim/process.h"

namespace byzrename::baselines {

/// Consensus-based strong order-preserving renaming: the "heavyweight"
/// solution the paper's introduction argues against.
///
/// Round 1 exchanges ids; then N parallel phase-king instances (one per
/// process slot, all sharing one physical message per round) agree on
/// what id each process claimed. Every correct process ends with the
/// same vector of claims, sorts the distinct values, and takes the rank
/// of its own id as its new name — strong (namespace N), order-
/// preserving, but 1 + 2(t+1) rounds: linear in t, versus Alg. 1's
/// O(log t). Requires N > 4t (simple-king variant) and, like any
/// consensus protocol, sender-authenticated links (scramble_links ==
/// false; see DESIGN.md — this presupposition is exactly why the paper's
/// model rules the approach out).
class ConsensusRenamingProcess final : public sim::ProcessBehavior {
 public:
  ConsensusRenamingProcess(sim::SystemParams params, sim::ProcessIndex my_index, sim::Id my_id);

  void on_send(sim::Round round, sim::Outbox& out) override;
  void on_receive(sim::Round round, const sim::Inbox& inbox) override;
  [[nodiscard]] bool done() const override { return decided_; }
  [[nodiscard]] std::optional<sim::Name> decision() const override { return decision_; }

  [[nodiscard]] int total_steps() const noexcept {
    return 1 + consensus::PhaseKingProcess::total_rounds(params_);
  }

  /// The agreed claim vector (kBottom where no id was agreed); equal at
  /// every correct process once done.
  [[nodiscard]] std::vector<std::int64_t> agreed_claims() const;

 private:
  sim::SystemParams params_;
  sim::ProcessIndex my_index_;
  sim::Id my_id_;

  std::vector<consensus::PhaseKingInstance> instances_;
  bool decided_ = false;
  std::optional<sim::Name> decision_;
};

}  // namespace byzrename::baselines

#endif  // BYZRENAME_BASELINES_CONSENSUS_RENAMING_H
