#include "baselines/consensus_renaming.h"

#include <algorithm>
#include <map>
#include <set>

namespace byzrename::baselines {

using consensus::PhaseKingInstance;
using sim::Delivery;
using sim::Inbox;
using sim::Outbox;
using sim::Round;
using sim::WordMsg;

ConsensusRenamingProcess::ConsensusRenamingProcess(sim::SystemParams params,
                                                   sim::ProcessIndex my_index, sim::Id my_id)
    : params_(params), my_index_(my_index), my_id_(my_id) {}

std::vector<std::int64_t> ConsensusRenamingProcess::agreed_claims() const {
  std::vector<std::int64_t> claims;
  claims.reserve(instances_.size());
  for (const PhaseKingInstance& instance : instances_) claims.push_back(instance.value());
  return claims;
}

void ConsensusRenamingProcess::on_send(Round round, Outbox& out) {
  if (decided_) return;
  if (round == 1) {
    out.broadcast(sim::IdMsg{my_id_});
    return;
  }
  const int phase = (round - 2) / 2;
  const bool is_round_a = (round - 2) % 2 == 0;
  if (is_round_a) {
    // All instances share one physical message: word j carries instance
    // j's current value.
    WordMsg msg{round, {}};
    msg.words = agreed_claims();
    out.broadcast(std::move(msg));
  } else if (my_index_ == phase) {
    WordMsg msg{round, {}};
    msg.words = agreed_claims();
    out.broadcast(std::move(msg));
  }
}

void ConsensusRenamingProcess::on_receive(Round round, const Inbox& inbox) {
  if (decided_) return;
  const std::size_t n = static_cast<std::size_t>(params_.n);

  if (round == 1) {
    // Link label == sender index in this model, so the claim of process j
    // is whatever arrived on link j.
    std::vector<std::int64_t> claims(n, PhaseKingInstance::kBottom);
    for (const Delivery& d : inbox) {
      const auto* msg = std::get_if<sim::IdMsg>(&*d.payload);
      if (msg == nullptr) continue;
      if (claims[static_cast<std::size_t>(d.link)] == PhaseKingInstance::kBottom) {
        claims[static_cast<std::size_t>(d.link)] = msg->id;
      }
    }
    instances_.reserve(n);
    for (std::size_t j = 0; j < n; ++j) instances_.emplace_back(params_, claims[j]);
    return;
  }

  const int phase = (round - 2) / 2;
  const bool is_round_a = (round - 2) % 2 == 0;

  if (is_round_a) {
    std::map<sim::LinkIndex, std::vector<std::int64_t>> per_link;
    for (const Delivery& d : inbox) {
      const auto* msg = std::get_if<WordMsg>(&*d.payload);
      if (msg == nullptr || msg->tag != round || msg->words.size() != n) continue;
      per_link.emplace(d.link, msg->words);
    }
    for (std::size_t j = 0; j < n; ++j) {
      std::vector<std::int64_t> received;
      received.reserve(per_link.size());
      for (const auto& [link, words] : per_link) received.push_back(words[j]);
      instances_[j].on_round_a(received);
    }
    return;
  }

  // Round B: adopt the phase king's vector where local counts were weak.
  std::optional<std::vector<std::int64_t>> king_words;
  for (const Delivery& d : inbox) {
    if (d.link != phase) continue;
    const auto* msg = std::get_if<WordMsg>(&*d.payload);
    if (msg == nullptr || msg->tag != round || msg->words.size() != n) continue;
    king_words = msg->words;
    break;
  }
  for (std::size_t j = 0; j < n; ++j) {
    instances_[j].on_round_b(king_words.has_value()
                                 ? std::optional<std::int64_t>((*king_words)[j])
                                 : std::nullopt);
  }

  if (phase == params_.t) {
    // Last phase complete: rank my id among the distinct agreed claims.
    decided_ = true;
    std::set<std::int64_t> agreed;
    for (const PhaseKingInstance& instance : instances_) {
      if (instance.value() != PhaseKingInstance::kBottom) agreed.insert(instance.value());
    }
    sim::Name rank = 0;
    bool found = false;
    for (const std::int64_t id : agreed) {
      ++rank;
      if (id == my_id_) {
        found = true;
        break;
      }
    }
    decision_ = found ? std::optional<sim::Name>(rank) : std::nullopt;
  }
}

}  // namespace byzrename::baselines
