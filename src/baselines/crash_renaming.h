#ifndef BYZRENAME_BASELINES_CRASH_RENAMING_H
#define BYZRENAME_BASELINES_CRASH_RENAMING_H

#include <optional>
#include <set>

#include "core/params.h"
#include "core/rank_approx.h"
#include "sim/process.h"

namespace byzrename::baselines {

/// Okun-style crash-tolerant strong order-preserving renaming
/// (Theoretical Computer Science 2010, the paper's reference [14]) — the
/// algorithm Alg. 1 generalizes to Byzantine faults.
///
/// One id-exchange step replaces the whole 4-step selection phase: with
/// crash faults nobody lies, so every received id is genuine and views
/// differ only by omission. The voting phase reuses the same approximate
/// machinery as Alg. 1 (trimming is unnecessary under crashes but
/// harmless) without the isValid filter, which crash faults never
/// trigger. Runs 1 + 3*ceil(log t)+3 steps; namespace N (strong).
class CrashRenamingProcess final : public sim::ProcessBehavior {
 public:
  CrashRenamingProcess(sim::SystemParams params, sim::Id my_id,
                       core::RenamingOptions options = {});

  void on_send(sim::Round round, sim::Outbox& out) override;
  void on_receive(sim::Round round, const sim::Inbox& inbox) override;
  [[nodiscard]] bool done() const override { return decided_; }
  [[nodiscard]] std::optional<sim::Name> decision() const override { return decision_; }

  [[nodiscard]] int total_steps() const noexcept { return 1 + iterations_; }
  [[nodiscard]] const std::set<sim::Id>& accepted() const noexcept { return accepted_; }
  [[nodiscard]] const core::RankMap& ranks() const noexcept { return ranks_; }

 private:
  void decide();

  sim::SystemParams params_;
  core::RenamingOptions options_;
  int iterations_;
  numeric::Rational delta_;
  sim::Id my_id_;

  std::set<sim::Id> accepted_;
  core::RankMap ranks_;

  bool decided_ = false;
  std::optional<sim::Name> decision_;
};

}  // namespace byzrename::baselines

#endif  // BYZRENAME_BASELINES_CRASH_RENAMING_H
