#include "baselines/bit_renaming.h"

#include <algorithm>
#include <vector>

namespace byzrename::baselines {

using sim::Delivery;
using sim::Id;
using sim::Inbox;
using sim::Name;
using sim::Outbox;
using sim::Round;
using sim::WordMsg;

namespace {

// WordMsg tags: claim rounds use kClaimBase + phase, echoes kEchoBase + phase.
constexpr std::int64_t kClaimBase = 1000;
constexpr std::int64_t kEchoBase = 2000;

}  // namespace

BitRenamingProcess::BitRenamingProcess(sim::SystemParams params, Id my_id)
    : params_(params),
      my_id_(my_id),
      selection_(params, my_id),
      phases_(core::ceil_log2(static_cast<int>(target_namespace(params)))) {}

void BitRenamingProcess::on_send(Round round, Outbox& out) {
  if (decided_) return;
  if (round <= 4) {
    selection_.on_send(round, out);
    return;
  }
  const int phase = (round - 5) / 2 + 1;
  const bool is_claim_round = (round - 5) % 2 == 0;
  if (is_claim_round) {
    out.broadcast(WordMsg{kClaimBase + phase, {my_id_, lo_, hi_}});
  } else {
    if (heard_claims_.empty()) return;  // nothing to confirm
    // Echo every distinct claim heard this phase in one message.
    WordMsg echo{kEchoBase + phase, {}};
    echo.words.reserve(heard_claims_.size() * 3);
    for (const Claim& claim : heard_claims_) {
      echo.words.push_back(std::get<0>(claim));
      echo.words.push_back(std::get<1>(claim));
      echo.words.push_back(std::get<2>(claim));
    }
    out.broadcast(std::move(echo));
  }
}

void BitRenamingProcess::on_receive(Round round, const Inbox& inbox) {
  if (decided_) return;
  if (round <= 4) {
    selection_.on_receive(round, inbox);
    if (round == 4) {
      lo_ = 0;
      hi_ = target_namespace(params_);
    }
    return;
  }
  const int phase = (round - 5) / 2 + 1;
  const bool is_claim_round = (round - 5) % 2 == 0;

  if (is_claim_round) {
    heard_claims_.clear();
    echo_links_.clear();
    std::set<sim::LinkIndex> claimed_links;  // one claim per link per phase
    for (const Delivery& d : inbox) {
      const auto* msg = std::get_if<WordMsg>(&*d.payload);
      if (msg == nullptr || msg->tag != kClaimBase + phase || msg->words.size() != 3) continue;
      if (!claimed_links.insert(d.link).second) continue;
      const Id id = msg->words[0];
      // Only claims by ids that survived the selection phase count;
      // this is what bounds Byzantine claim injection.
      if (!selection_.accepted().contains(id)) continue;
      const Name lo = msg->words[1];
      const Name hi = msg->words[2];
      if (lo < 0 || hi <= lo || hi > target_namespace(params_)) continue;
      heard_claims_.insert({id, lo, hi});
    }
    return;
  }

  // Echo round: count confirmations per claim over distinct links.
  for (const Delivery& d : inbox) {
    const auto* msg = std::get_if<WordMsg>(&*d.payload);
    if (msg == nullptr || msg->tag != kEchoBase + phase || msg->words.size() % 3 != 0) continue;
    for (std::size_t i = 0; i < msg->words.size(); i += 3) {
      const Id id = msg->words[i];
      if (!selection_.accepted().contains(id)) continue;
      const Name lo = msg->words[i + 1];
      const Name hi = msg->words[i + 2];
      if (lo < 0 || hi <= lo || hi > target_namespace(params_)) continue;
      echo_links_[{id, lo, hi}].insert(d.link);
    }
  }

  // Confirmed claimants of my own interval, in id order.
  std::vector<Id> same_interval;
  for (const auto& [claim, links] : echo_links_) {
    if (static_cast<int>(links.size()) < params_.n - params_.t) continue;
    if (std::get<1>(claim) != lo_ || std::get<2>(claim) != hi_) continue;
    same_interval.push_back(std::get<0>(claim));
  }
  std::sort(same_interval.begin(), same_interval.end());
  same_interval.erase(std::unique(same_interval.begin(), same_interval.end()),
                      same_interval.end());

  // 1-based rank of my id among the confirmed claimants of my interval.
  // My own claim is always confirmed (every correct process echoes it),
  // so this is its position; the insertion point covers the impossible
  // miss defensively.
  const auto my_position = std::lower_bound(same_interval.begin(), same_interval.end(), my_id_);
  const Name rank = static_cast<Name>(my_position - same_interval.begin()) + 1;

  const Name size = hi_ - lo_;
  const Name half = size / 2;
  if (rank <= half) {
    hi_ = lo_ + half;
  } else {
    lo_ = lo_ + half;
  }

  if (phase == phases_) {
    decided_ = true;
    decision_ = lo_ + 1;  // interval has shrunk to a single name
  }
}

}  // namespace byzrename::baselines
