#ifndef BYZRENAME_BASELINES_BIT_RENAMING_H
#define BYZRENAME_BASELINES_BIT_RENAMING_H

#include <map>
#include <optional>
#include <set>
#include <tuple>

#include "core/id_selection.h"
#include "core/params.h"
#include "sim/process.h"

namespace byzrename::baselines {

/// Non-order-preserving Byzantine renaming in the lineage of Okun, Barak
/// & Gafni (Distributed Computing 2008, the paper's reference [15]):
/// the bit-by-bit interval-splitting algorithm of Chaudhuri, Herlihy &
/// Tuttle hardened against Byzantine faults with echo certificates.
///
/// Steps 1-4 reuse the 4-step id selection of Alg. 1 to bound the ids in
/// play. Then, for ceil(log2(2N)) phases of two rounds each, every
/// process claims its current name interval, all claims are echoed, and
/// a claim counts only with N-t echo confirmations from distinct links
/// and an id that passed selection. A process splits its interval by the
/// rank of its id among the confirmed claimants of the same interval.
///
/// This is a *reconstruction*, not a line-by-line port of [15] (their
/// result goes through a general crash-to-Byzantine translation); the
/// namespace constant is measured rather than proven — see EXPERIMENTS.md.
/// Steps: 4 + 2*ceil(log2(2N)); target namespace 2N; NOT order-preserving.
class BitRenamingProcess final : public sim::ProcessBehavior {
 public:
  BitRenamingProcess(sim::SystemParams params, sim::Id my_id);

  void on_send(sim::Round round, sim::Outbox& out) override;
  void on_receive(sim::Round round, const sim::Inbox& inbox) override;
  [[nodiscard]] bool done() const override { return decided_; }
  [[nodiscard]] std::optional<sim::Name> decision() const override { return decision_; }

  [[nodiscard]] int total_steps() const noexcept { return 4 + 2 * phases_; }
  [[nodiscard]] static sim::Name target_namespace(const sim::SystemParams& params) noexcept {
    return 2 * static_cast<sim::Name>(params.n);
  }

 private:
  /// A name-interval claim: (id, lo, hi).
  using Claim = std::tuple<sim::Id, sim::Name, sim::Name>;

  sim::SystemParams params_;
  sim::Id my_id_;
  core::IdSelection selection_;
  int phases_;

  sim::Name lo_ = 0;
  sim::Name hi_ = 0;

  /// Claims received in the current phase's claim round (deduplicated).
  std::set<Claim> heard_claims_;
  /// Echo confirmations per claim in the current phase's echo round.
  std::map<Claim, std::set<sim::LinkIndex>> echo_links_;

  bool decided_ = false;
  std::optional<sim::Name> decision_;
};

}  // namespace byzrename::baselines

#endif  // BYZRENAME_BASELINES_BIT_RENAMING_H
