#include "baselines/crash_renaming.h"

#include <map>

namespace byzrename::baselines {

using numeric::Rational;
using sim::Id;
using sim::Inbox;
using sim::Outbox;
using sim::Round;

CrashRenamingProcess::CrashRenamingProcess(sim::SystemParams params, Id my_id,
                                           core::RenamingOptions options)
    : params_(params),
      options_(options),
      iterations_(options.approximation_iterations >= 0
                      ? options.approximation_iterations
                      : core::default_approximation_iterations(params.t)),
      delta_(core::delta(params)),
      my_id_(my_id) {}

void CrashRenamingProcess::on_send(Round round, Outbox& out) {
  if (decided_) return;
  if (round == 1) {
    out.broadcast(sim::IdMsg{my_id_});
    return;
  }
  out.broadcast(core::encode_vote(ranks_));
}

void CrashRenamingProcess::on_receive(Round round, const Inbox& inbox) {
  if (decided_) return;
  if (round == 1) {
    std::set<sim::LinkIndex> seen_links;
    for (const sim::Delivery& d : inbox) {
      const auto* msg = std::get_if<sim::IdMsg>(&*d.payload);
      if (msg == nullptr) continue;
      if (!seen_links.insert(d.link).second) continue;
      accepted_.insert(msg->id);
    }
    std::int64_t position = 0;
    for (const Id id : accepted_) {
      ++position;
      ranks_.emplace(id, Rational(position) * delta_);
    }
    if (iterations_ == 0) decide();
    return;
  }

  std::map<sim::LinkIndex, core::RankMap> per_link;
  for (const sim::Delivery& d : inbox) {
    const auto* msg = std::get_if<sim::RanksMsg>(&*d.payload);
    if (msg == nullptr) continue;
    core::RankMap vote;
    if (!core::decode_vote(*msg, params_, options_, vote)) continue;
    per_link.emplace(d.link, std::move(vote));
  }
  std::vector<core::RankMap> votes;
  votes.reserve(per_link.size());
  for (auto& [link, vote] : per_link) votes.push_back(std::move(vote));

  core::ApproximateResult result = core::approximate(params_, accepted_, ranks_, votes);
  ranks_ = std::move(result.new_ranks);

  if (round == 1 + iterations_) decide();
}

void CrashRenamingProcess::decide() {
  decided_ = true;
  const auto it = ranks_.find(my_id_);
  decision_ = it != ranks_.end() ? std::optional<sim::Name>(it->second.round().to_int64())
                                 : std::nullopt;
}

}  // namespace byzrename::baselines
